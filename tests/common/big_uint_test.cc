#include "common/big_uint.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace cpclean {
namespace {

TEST(BigUintTest, ZeroAndSmallValues) {
  EXPECT_TRUE(BigUint().IsZero());
  EXPECT_EQ(BigUint().ToString(), "0");
  EXPECT_EQ(BigUint(1).ToString(), "1");
  EXPECT_EQ(BigUint(123456789).ToString(), "123456789");
  EXPECT_FALSE(BigUint(1).IsZero());
}

TEST(BigUintTest, Uint64RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 4294967295ull, 4294967296ull,
                     18446744073709551615ull}) {
    EXPECT_EQ(BigUint(v).ToUint64(), v);
    EXPECT_EQ(BigUint(v).ToString(), std::to_string(v));
  }
}

TEST(BigUintTest, AdditionMatchesUint64Reference) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.NextUint64() >> 1;  // avoid overflow
    const uint64_t b = rng.NextUint64() >> 1;
    EXPECT_EQ((BigUint(a) + BigUint(b)).ToUint64(), a + b);
  }
}

TEST(BigUintTest, MultiplicationMatchesUint64Reference) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.NextUint64() >> 33;
    const uint64_t b = rng.NextUint64() >> 33;
    EXPECT_EQ((BigUint(a) * BigUint(b)).ToUint64(), a * b);
  }
}

TEST(BigUintTest, MultiplicationBeyond64Bits) {
  // 2^64 * 2^64 = 2^128.
  const BigUint two64 = BigUint(2).Pow(64);
  const BigUint two128 = two64 * two64;
  EXPECT_EQ(two128.ToString(), "340282366920938463463374607431768211456");
  EXPECT_EQ(two128, BigUint(2).Pow(128));
}

TEST(BigUintTest, PowAndDecimalParsing) {
  EXPECT_EQ(BigUint(10).Pow(0).ToUint64(), 1u);
  EXPECT_EQ(BigUint(10).Pow(20).ToString(), "100000000000000000000");
  EXPECT_EQ(BigUint::FromDecimalString("100000000000000000000"),
            BigUint(10).Pow(20));
  EXPECT_EQ(BigUint::FromDecimalString("0"), BigUint());
  // M^N world-count shape: 5^3000 has 2097 digits.
  EXPECT_EQ(BigUint(5).Pow(3000).ToString().size(), 2097u);
}

TEST(BigUintTest, ComparisonTotalOrder) {
  const BigUint a(5), b(7);
  const BigUint big = BigUint(2).Pow(100);
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_EQ(a.Compare(BigUint(5)), 0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= b);
  EXPECT_TRUE(a < big);
  EXPECT_TRUE(big > b);
  EXPECT_NE(a, b);
}

TEST(BigUintTest, MultiplyByZero) {
  const BigUint big = BigUint(3).Pow(50);
  EXPECT_TRUE((big * BigUint()).IsZero());
  EXPECT_EQ(big + BigUint(), big);
}

TEST(BigUintTest, CompoundAssignment) {
  BigUint v(3);
  v *= BigUint(4);
  v += BigUint(8);
  EXPECT_EQ(v.ToUint64(), 20u);
}

TEST(BigUintTest, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigUint(1000).ToDouble(), 1000.0);
  const double two100 = BigUint(2).Pow(100).ToDouble();
  EXPECT_NEAR(two100, std::pow(2.0, 100), std::pow(2.0, 60));
}

TEST(BigUintTest, DivideToDouble) {
  EXPECT_NEAR(BigUint(6).DivideToDouble(BigUint(8)), 0.75, 1e-12);
  const BigUint big = BigUint(7).Pow(200);
  EXPECT_NEAR(big.DivideToDouble(big + big), 0.5, 1e-9);
  EXPECT_NEAR((big + big).DivideToDouble(big), 2.0, 1e-9);
}

TEST(BigUintTest, AssociativityAndDistributivityRandomized) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const BigUint a(rng.NextUint64());
    const BigUint b(rng.NextUint64());
    const BigUint c(rng.NextUint64());
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

}  // namespace
}  // namespace cpclean
