#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace cpclean {
namespace {

TEST(LogLevelTest, SetAndGet) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LogMessageTest, NonFatalLevelsDoNotAbort) {
  // Smoke: streaming through every non-fatal level must be safe.
  CP_LOG(Debug) << "debug " << 1;
  CP_LOG(Info) << "info " << 2.5;
  CP_LOG(Warning) << "warning " << "text";
  CP_LOG(Error) << "error " << 'c';
  SUCCEED();
}

TEST(CheckMacrosTest, PassingChecksAreSilent) {
  CP_CHECK(true) << "never shown";
  CP_CHECK_EQ(1, 1);
  CP_CHECK_NE(1, 2);
  CP_CHECK_LT(1, 2);
  CP_CHECK_LE(2, 2);
  CP_CHECK_GT(3, 2);
  CP_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(CheckMacrosTest, FailingCheckAborts) {
  EXPECT_DEATH({ CP_CHECK(false) << "boom"; }, "Check failed");
  EXPECT_DEATH({ CP_CHECK_EQ(1, 2); }, "Check failed");
}

TEST(DcheckTest, CompilesInBothModes) {
  CP_DCHECK(true) << "never";
  SUCCEED();
}

TEST(GetEnvIntTest, ReadsAndFallsBack) {
  ::setenv("CPCLEAN_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("CPCLEAN_TEST_ENV_INT", 7), 42);
  ::setenv("CPCLEAN_TEST_ENV_INT", "not-a-number", 1);
  EXPECT_EQ(GetEnvInt("CPCLEAN_TEST_ENV_INT", 7), 7);
  ::unsetenv("CPCLEAN_TEST_ENV_INT");
  EXPECT_EQ(GetEnvInt("CPCLEAN_TEST_ENV_INT", 7), 7);
}

}  // namespace
}  // namespace cpclean
