#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cpclean {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i, int) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkerIndicesAreInRangeAndDisjointSlotsAreSafe) {
  ThreadPool pool(3);
  std::vector<double> slot_sums(3, 0.0);  // one accumulator per worker
  std::atomic<bool> bad_worker{false};
  pool.ParallelFor(500, [&](int64_t i, int worker) {
    if (worker < 0 || worker >= 3) bad_worker = true;
    slot_sums[static_cast<size_t>(worker)] += static_cast<double>(i);
  });
  EXPECT_FALSE(bad_worker.load());
  const double total =
      std::accumulate(slot_sums.begin(), slot_sums.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 499.0 * 500.0 / 2.0);
}

TEST(ThreadPoolTest, SerialPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(8, [&](int64_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  std::vector<int64_t> want(8);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(ThreadPoolTest, ZeroAndNegativeSizesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t, int) { ++calls; });
  pool.ParallelFor(-5, [&](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(200,
                       [&](int64_t i, int) {
                         ran.fetch_add(1);
                         if (i == 97) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);

  // Pool reuse after an exception must work (the ISSUE's reuse case).
  std::atomic<int> after{0};
  pool.ParallelFor(100, [&](int64_t, int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolTest, ExceptionFromSerialPoolPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(
                   5, [&](int64_t i, int) {
                     if (i == 2) throw std::logic_error("inline");
                   }),
               std::logic_error);
  int calls = 0;
  pool.ParallelFor(3, [&](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  std::atomic<bool> worker_mismatch{false};
  pool.ParallelFor(64, [&](int64_t outer, int outer_worker) {
    // Nested call on the same pool: must not deadlock; runs inline on this
    // worker and the inner bodies inherit its worker index (per-worker
    // scratch stays unique per concurrently-executing thread).
    pool.ParallelFor(64, [&](int64_t inner, int inner_worker) {
      if (inner_worker != outer_worker) worker_mismatch = true;
      hits[static_cast<size_t>(outer * 64 + inner)].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(worker_mismatch.load());
}

TEST(ThreadPoolTest, CrossPoolNestingKeepsWorkerIndexInRange) {
  // A pool invoked from inside a different pool's parallel region runs
  // inline as *its own* worker 0 — never the outer pool's (possibly
  // larger) worker index.
  ThreadPool outer(8);
  ThreadPool inner(2);
  std::atomic<bool> bad_worker{false};
  std::vector<std::atomic<int>> hits(32 * 8);
  outer.ParallelFor(32, [&](int64_t o, int) {
    inner.ParallelFor(8, [&](int64_t i, int inner_worker) {
      if (inner_worker < 0 || inner_worker >= inner.num_threads()) {
        bad_worker = true;
      }
      hits[static_cast<size_t>(o * 8 + i)].fetch_add(1);
    });
  });
  EXPECT_FALSE(bad_worker.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(round + 1, [&](int64_t i, int) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), static_cast<int64_t>(round) * (round + 1) / 2);
  }
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;  // num_threads = 0 → hardware concurrency, floor 1
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareOnePool) {
  // Many threads submitting ParallelFor jobs to one pool at once (the
  // serving-layer pattern: N sessions on the global pool). Jobs run
  // concurrently with work-stealing; each runs complete and correct.
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kRounds = 20;
  constexpr int64_t kItems = 257;
  std::vector<std::thread> submitters;
  std::vector<int64_t> sums(kSubmitters, 0);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sums, s] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<int64_t> sum{0};
        pool.ParallelFor(kItems, [&](int64_t i, int) { sum.fetch_add(i); });
        sums[static_cast<size_t>(s)] += sum.load();
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (const int64_t sum : sums) {
    EXPECT_EQ(sum, kRounds * (kItems - 1) * kItems / 2);
  }
}

TEST(ThreadPoolTest, ConcurrentSubmitterExceptionsStayWithTheirJob) {
  ThreadPool pool(3);
  std::vector<std::thread> submitters;
  std::atomic<int> caught{0};
  std::atomic<int> clean{0};
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 10; ++round) {
        try {
          pool.ParallelFor(64, [&](int64_t i, int) {
            if (s == 0 && i == 13) throw std::runtime_error("boom");
          });
          ++clean;
        } catch (const std::runtime_error&) {
          ++caught;
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(caught.load(), 10);   // only submitter 0's jobs throw
  EXPECT_EQ(clean.load(), 30);
}

TEST(ThreadPoolTest, ConcurrentJobsRunSimultaneously) {
  // Regression for the seed-era one-job-at-a-time admission: while job A
  // is blocked mid-flight, a second submitter's job B must still run to
  // completion on the same pool. Under single-job admission this test
  // never finishes (B queues behind A, and A waits on a flag only set
  // after B completes).
  ThreadPool pool(3);
  std::atomic<bool> a_started{false};
  std::atomic<bool> release_a{false};
  std::thread submitter_a([&] {
    pool.ParallelFor(4, [&](int64_t i, int) {
      if (i == 0) {
        a_started = true;
        while (!release_a.load()) std::this_thread::yield();
      }
    });
  });
  while (!a_started.load()) std::this_thread::yield();
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&](int64_t i, int) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
  release_a = true;
  submitter_a.join();
}

TEST(ThreadPoolTest, ConcurrentJobsBitIdenticalToSerial) {
  // Two simultaneously submitted jobs must each produce bit-identical
  // results to a serial run: bodies fill per-index slots, the reduction
  // replays serially in index order (the repo-wide determinism contract).
  constexpr int64_t kItems = 4096;
  const auto body = [](int job, int64_t i) {
    const double x = std::sin(static_cast<double>(i) * 1e-3 +
                              static_cast<double>(job));
    return x / (std::sqrt(std::abs(x) + 1.0) + static_cast<double>(job));
  };
  const auto reduce = [](const std::vector<double>& slots) {
    double sum = 0.0;
    for (const double v : slots) sum += v;
    return sum;
  };
  std::array<double, 2> want{};
  for (int job = 0; job < 2; ++job) {
    std::vector<double> slots(static_cast<size_t>(kItems));
    for (int64_t i = 0; i < kItems; ++i) {
      slots[static_cast<size_t>(i)] = body(job + 1, i);
    }
    want[static_cast<size_t>(job)] = reduce(slots);
  }
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::array<double, 2> got{};
    std::vector<std::thread> submitters;
    for (int job = 0; job < 2; ++job) {
      submitters.emplace_back([&, job] {
        std::vector<double> slots(static_cast<size_t>(kItems));
        pool.ParallelFor(kItems, [&](int64_t i, int) {
          slots[static_cast<size_t>(i)] = body(job + 1, i);
        });
        got[static_cast<size_t>(job)] = reduce(slots);
      });
    }
    for (std::thread& t : submitters) t.join();
    for (int job = 0; job < 2; ++job) {
      uint64_t got_bits = 0;
      uint64_t want_bits = 0;
      std::memcpy(&got_bits, &got[static_cast<size_t>(job)], sizeof(double));
      std::memcpy(&want_bits, &want[static_cast<size_t>(job)],
                  sizeof(double));
      EXPECT_EQ(got_bits, want_bits) << "job " << job << " round " << round;
    }
  }
}

TEST(ThreadPoolTest, GlobalPoolIsSharedAndConfigurationIsSticky) {
  ThreadPool& pool = GlobalThreadPool();
  EXPECT_EQ(&pool, &GlobalThreadPool());  // one instance per process
  EXPECT_EQ(pool.num_threads(), GlobalThreadPoolThreads());
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&](int64_t i, int) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
  // Re-configuring to the current size is a no-op; to any other size it
  // must fail — the pool is already running.
  EXPECT_TRUE(ConfigureGlobalThreadPool(pool.num_threads()).ok());
  const Status changed = ConfigureGlobalThreadPool(pool.num_threads() + 1);
  EXPECT_FALSE(changed.ok());
  EXPECT_EQ(changed.code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace cpclean
