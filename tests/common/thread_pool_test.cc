#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cpclean {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i, int) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkerIndicesAreInRangeAndDisjointSlotsAreSafe) {
  ThreadPool pool(3);
  std::vector<double> slot_sums(3, 0.0);  // one accumulator per worker
  std::atomic<bool> bad_worker{false};
  pool.ParallelFor(500, [&](int64_t i, int worker) {
    if (worker < 0 || worker >= 3) bad_worker = true;
    slot_sums[static_cast<size_t>(worker)] += static_cast<double>(i);
  });
  EXPECT_FALSE(bad_worker.load());
  const double total =
      std::accumulate(slot_sums.begin(), slot_sums.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 499.0 * 500.0 / 2.0);
}

TEST(ThreadPoolTest, SerialPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(8, [&](int64_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  std::vector<int64_t> want(8);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(ThreadPoolTest, ZeroAndNegativeSizesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t, int) { ++calls; });
  pool.ParallelFor(-5, [&](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(200,
                       [&](int64_t i, int) {
                         ran.fetch_add(1);
                         if (i == 97) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);

  // Pool reuse after an exception must work (the ISSUE's reuse case).
  std::atomic<int> after{0};
  pool.ParallelFor(100, [&](int64_t, int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPoolTest, ExceptionFromSerialPoolPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(
                   5, [&](int64_t i, int) {
                     if (i == 2) throw std::logic_error("inline");
                   }),
               std::logic_error);
  int calls = 0;
  pool.ParallelFor(3, [&](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  std::atomic<bool> worker_mismatch{false};
  pool.ParallelFor(64, [&](int64_t outer, int outer_worker) {
    // Nested call on the same pool: must not deadlock; runs inline on this
    // worker and the inner bodies inherit its worker index (per-worker
    // scratch stays unique per concurrently-executing thread).
    pool.ParallelFor(64, [&](int64_t inner, int inner_worker) {
      if (inner_worker != outer_worker) worker_mismatch = true;
      hits[static_cast<size_t>(outer * 64 + inner)].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(worker_mismatch.load());
}

TEST(ThreadPoolTest, CrossPoolNestingKeepsWorkerIndexInRange) {
  // A pool invoked from inside a different pool's parallel region runs
  // inline as *its own* worker 0 — never the outer pool's (possibly
  // larger) worker index.
  ThreadPool outer(8);
  ThreadPool inner(2);
  std::atomic<bool> bad_worker{false};
  std::vector<std::atomic<int>> hits(32 * 8);
  outer.ParallelFor(32, [&](int64_t o, int) {
    inner.ParallelFor(8, [&](int64_t i, int inner_worker) {
      if (inner_worker < 0 || inner_worker >= inner.num_threads()) {
        bad_worker = true;
      }
      hits[static_cast<size_t>(o * 8 + i)].fetch_add(1);
    });
  });
  EXPECT_FALSE(bad_worker.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(round + 1, [&](int64_t i, int) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), static_cast<int64_t>(round) * (round + 1) / 2);
  }
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;  // num_threads = 0 → hardware concurrency, floor 1
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareOnePool) {
  // Many threads submitting ParallelFor jobs to one pool at once (the
  // serving-layer pattern: N sessions on the global pool). Jobs are
  // admitted one at a time, each runs complete and correct.
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kRounds = 20;
  constexpr int64_t kItems = 257;
  std::vector<std::thread> submitters;
  std::vector<int64_t> sums(kSubmitters, 0);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sums, s] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<int64_t> sum{0};
        pool.ParallelFor(kItems, [&](int64_t i, int) { sum.fetch_add(i); });
        sums[static_cast<size_t>(s)] += sum.load();
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (const int64_t sum : sums) {
    EXPECT_EQ(sum, kRounds * (kItems - 1) * kItems / 2);
  }
}

TEST(ThreadPoolTest, ConcurrentSubmitterExceptionsStayWithTheirJob) {
  ThreadPool pool(3);
  std::vector<std::thread> submitters;
  std::atomic<int> caught{0};
  std::atomic<int> clean{0};
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 10; ++round) {
        try {
          pool.ParallelFor(64, [&](int64_t i, int) {
            if (s == 0 && i == 13) throw std::runtime_error("boom");
          });
          ++clean;
        } catch (const std::runtime_error&) {
          ++caught;
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(caught.load(), 10);   // only submitter 0's jobs throw
  EXPECT_EQ(clean.load(), 30);
}

TEST(ThreadPoolTest, GlobalPoolIsSharedAndConfigurationIsSticky) {
  ThreadPool& pool = GlobalThreadPool();
  EXPECT_EQ(&pool, &GlobalThreadPool());  // one instance per process
  EXPECT_EQ(pool.num_threads(), GlobalThreadPoolThreads());
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&](int64_t i, int) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
  // Re-configuring to the current size is a no-op; to any other size it
  // must fail — the pool is already running.
  EXPECT_TRUE(ConfigureGlobalThreadPool(pool.num_threads()).ok());
  const Status changed = ConfigureGlobalThreadPool(pool.num_threads() + 1);
  EXPECT_FALSE(changed.ok());
  EXPECT_EQ(changed.code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace cpclean
