#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace cpclean {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists, StatusCode::kIoError,
        StatusCode::kParseError, StatusCode::kNotImplemented,
        StatusCode::kInternal, StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chained(int x) {
  CP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kOutOfRange);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, HoldsValueOrStatus) {
  const Result<int> good = Half(8);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 4);
  EXPECT_EQ(*good, 4);

  const Result<int> bad = Half(3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace cpclean
