#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace cpclean {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextUint64();
    EXPECT_EQ(va, b.NextUint64());
    if (va != c.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedUintStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[static_cast<size_t>(rng.NextCategorical({1.0, 2.0, 7.0}))];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(RngTest, CategoricalSkipsZeroWeight) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(rng.NextCategorical({1.0, 0.0, 1.0}), 1);
  }
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(23);
  const std::vector<int> perm = rng.Permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 50u);
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng childA = parent.Fork();
  Rng childB = parent.Fork();
  bool differs = false;
  for (int i = 0; i < 20; ++i) {
    if (childA.NextUint64() != childB.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace cpclean
