#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cpclean {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> pieces = {"x", "", "yz"};
  EXPECT_EQ(Join(pieces, ","), "x,,yz");
  EXPECT_EQ(Split(Join(pieces, ","), ','), pieces);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StripTest, RemovesBothEnds) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("xyz"), "xyz");
}

TEST(CaseTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ba", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ParseDoubleTest, AcceptsNumbersRejectsGarbage) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("12x").ok());
  EXPECT_FALSE(ParseDouble("rome").ok());
}

TEST(ParseIntTest, AcceptsIntsRejectsGarbageAndOverflow) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt("4.5").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.0 / 3.0), "0.33");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace cpclean
