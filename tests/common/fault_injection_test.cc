// The fault-injection registry's contract: rules parse (and reject)
// exactly as documented, fire schedules are deterministic in the seed,
// sleep rules stall without failing, and with no rules installed a site
// is a no-op.

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

namespace cpclean {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  // Registry state is process-global; every test starts and ends clean.
  void SetUp() override { FaultInjection::Clear(); }
  void TearDown() override { FaultInjection::Clear(); }
};

TEST_F(FaultInjectionTest, InactiveSitesNeverFire) {
  EXPECT_FALSE(FaultInjection::Active());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(FaultHit("store.rename"));
  }
  // Unruled sites are not even counted — that is the zero-cost path.
  EXPECT_TRUE(FaultInjection::Stats().empty());
}

TEST_F(FaultInjectionTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(FaultInjection::Configure("store.rename=once").ok());
  EXPECT_TRUE(FaultInjection::Active());
  EXPECT_TRUE(FaultHit("store.rename"));
  EXPECT_FALSE(FaultHit("store.rename"));
  EXPECT_FALSE(FaultHit("store.rename"));
  const std::vector<FaultInjection::SiteStats> stats =
      FaultInjection::Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, "store.rename");
  EXPECT_EQ(stats[0].hits, 3u);
  EXPECT_EQ(stats[0].fires, 1u);
}

TEST_F(FaultInjectionTest, CountedRulesFollowTheirSchedules) {
  ASSERT_TRUE(
      FaultInjection::Configure("a=nth:3;b=every:2;c=after:2;d=always").ok());
  std::string nth, every, after, always;
  for (int i = 0; i < 6; ++i) {
    nth.push_back(FaultHit("a") ? 'X' : '.');
    every.push_back(FaultHit("b") ? 'X' : '.');
    after.push_back(FaultHit("c") ? 'X' : '.');
    always.push_back(FaultHit("d") ? 'X' : '.');
  }
  EXPECT_EQ(nth, "..X...");
  EXPECT_EQ(every, ".X.X.X");
  EXPECT_EQ(after, "..XXXX");
  EXPECT_EQ(always, "XXXXXX");
}

TEST_F(FaultInjectionTest, ProbabilityScheduleIsDeterministicInTheSeed) {
  const auto schedule = [](const std::string& config) {
    EXPECT_TRUE(FaultInjection::Configure(config).ok());
    std::string out;
    for (int i = 0; i < 64; ++i) out.push_back(FaultHit("s") ? 'X' : '.');
    return out;
  };
  const std::string first = schedule("seed=7;s=p:0.3");
  const std::string replay = schedule("seed=7;s=p:0.3");
  const std::string reseeded = schedule("seed=8;s=p:0.3");
  EXPECT_EQ(first, replay);
  EXPECT_NE(first, reseeded);  // astronomically unlikely to collide
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
  // Extremes stay extremes.
  EXPECT_EQ(schedule("s=p:0").find('X'), std::string::npos);
  EXPECT_EQ(schedule("s=p:1").find('.'), std::string::npos);
}

TEST_F(FaultInjectionTest, SleepStallsWithoutFiring) {
  ASSERT_TRUE(FaultInjection::Configure("slow=sleep:50").ok());
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_FALSE(FaultHit("slow"));
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            45);
  const std::vector<FaultInjection::SiteStats> stats =
      FaultInjection::Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].fires, 1u);  // a stall counts as a fire for reporting
}

TEST_F(FaultInjectionTest, OffErasesAndEmptyConfigClears) {
  ASSERT_TRUE(FaultInjection::Configure("a=always;b=always").ok());
  ASSERT_TRUE(FaultInjection::Configure("a=always;b=always;a=off").ok());
  EXPECT_FALSE(FaultHit("a"));
  EXPECT_TRUE(FaultHit("b"));
  ASSERT_TRUE(FaultInjection::Configure("").ok());
  EXPECT_FALSE(FaultInjection::Active());
  EXPECT_FALSE(FaultHit("b"));
}

TEST_F(FaultInjectionTest, ConfigureToleratesWhitespaceAndEmptyClauses) {
  ASSERT_TRUE(
      FaultInjection::Configure(" a=once ; ; seed=3 ;b=nth:2; ").ok());
  EXPECT_TRUE(FaultHit("a"));
  EXPECT_FALSE(FaultHit("b"));
  EXPECT_TRUE(FaultHit("b"));
}

TEST_F(FaultInjectionTest, MalformedConfigsRejectAndLeaveRulesUntouched) {
  ASSERT_TRUE(FaultInjection::Configure("keep=always").ok());
  for (const char* bad :
       {"nope", "=once", "a=", "a=sometimes", "a=nth:0", "a=every:x",
        "a=p:1.5", "a=p:", "a=after:-1", "seed=x"}) {
    EXPECT_FALSE(FaultInjection::Configure(bad).ok()) << bad;
  }
  // The failed Configure calls above must not have dropped the live rule.
  EXPECT_TRUE(FaultHit("keep"));
}

}  // namespace
}  // namespace cpclean
