#include "common/semiring.h"

#include <gtest/gtest.h>

namespace cpclean {
namespace {

template <typename S>
class SemiringLawsTest : public ::testing::Test {};

using AllSemirings = ::testing::Types<ExactSemiring, Uint64Semiring,
                                      DoubleSemiring, BoolSemiring>;
TYPED_TEST_SUITE(SemiringLawsTest, AllSemirings);

TYPED_TEST(SemiringLawsTest, Identities) {
  using S = TypeParam;
  const auto five = S::FromCount(5);
  EXPECT_TRUE(S::IsZero(S::Zero()));
  EXPECT_FALSE(S::IsZero(S::One()));
  EXPECT_EQ(S::ToDouble(S::Add(five, S::Zero())), S::ToDouble(five));
  EXPECT_EQ(S::ToDouble(S::Mul(five, S::One())), S::ToDouble(five));
  EXPECT_TRUE(S::IsZero(S::Mul(five, S::Zero())));
}

TYPED_TEST(SemiringLawsTest, AddMulConsistentWithCounts) {
  using S = TypeParam;
  // 2+3 and 2*3 under the homomorphism from (N, +, *).
  const auto two = S::FromCount(2);
  const auto three = S::FromCount(3);
  const auto sum = S::Add(two, three);
  const auto prod = S::Mul(two, three);
  EXPECT_FALSE(S::IsZero(sum));
  EXPECT_FALSE(S::IsZero(prod));
}

TEST(SemiringValuesTest, ExactCountsAreExact) {
  using S = ExactSemiring;
  EXPECT_EQ(S::Add(S::FromCount(2), S::FromCount(3)), BigUint(5));
  EXPECT_EQ(S::Mul(S::FromCount(2), S::FromCount(3)), BigUint(6));
  EXPECT_DOUBLE_EQ(S::ToDouble(S::FromCount(42)), 42.0);
}

TEST(SemiringValuesTest, BoolIsPossibilitySemiring) {
  using S = BoolSemiring;
  EXPECT_EQ(S::Add(S::One(), S::One()), S::One());   // 1 OR 1 = 1
  EXPECT_EQ(S::Mul(S::One(), S::Zero()), S::Zero()); // 1 AND 0 = 0
  EXPECT_EQ(S::FromCount(17), S::One());
  EXPECT_EQ(S::FromCount(0), S::Zero());
  EXPECT_DOUBLE_EQ(S::ToDouble(S::One()), 1.0);
}

TEST(SemiringValuesTest, DoubleIsPlainArithmetic) {
  using S = DoubleSemiring;
  EXPECT_DOUBLE_EQ(S::Add(0.25, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(S::Mul(0.25, 0.5), 0.125);
}

}  // namespace
}  // namespace cpclean
