#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cpclean {
namespace {

TEST(StatsTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1, 3}), 1.0);  // population variance
  EXPECT_DOUBLE_EQ(StdDev({1, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Variance({5}), 0.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, -1, 2}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3, -1, 2}), 3.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 15.0);  // midway between 10 and 20
  EXPECT_DOUBLE_EQ(Median(v), 30.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({50, 10, 40, 20, 30}, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile({7}, 99), 7.0);
}

TEST(StatsTest, EntropyOfUniformAndDegenerate) {
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
  EXPECT_NEAR(EntropyBits({0.5, 0.5}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);  // no mass -> 0 by convention
  EXPECT_NEAR(EntropyBits({0.25, 0.25, 0.25, 0.25}), 2.0, 1e-12);
}

TEST(StatsTest, EntropyNormalizesMasses) {
  // Counts (unnormalized masses) give the same entropy as probabilities.
  EXPECT_NEAR(Entropy({6, 2}), Entropy({0.75, 0.25}), 1e-12);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);  // mismatch
}

}  // namespace
}  // namespace cpclean
