#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cpclean {
namespace {

// ---------------------------------------------------------------------------
// Bucket math.

TEST(MetricHistogramTest, SmallValuesGetExactBuckets) {
  for (uint64_t v = 0; v < 4; ++v) {
    const int idx = MetricHistogram::BucketIndex(v);
    EXPECT_EQ(idx, static_cast<int>(v));
    EXPECT_EQ(MetricHistogram::BucketLowerBound(idx), v);
    EXPECT_EQ(MetricHistogram::BucketUpperBound(idx), v + 1);
  }
}

TEST(MetricHistogramTest, EveryBucketContainsItsValue) {
  const std::vector<uint64_t> probes = {
      0,       1,       2,          3,          4,      5,     6,
      7,       8,       9,          15,         16,     17,    31,
      32,      33,      63,         64,         65,     100,   1000,
      1023,    1024,    1025,       999999,     1u << 20,
      (1u << 20) + 1,   (1u << 31), UINT32_MAX, 1ULL << 40,
      (1ULL << 62) - 1, 1ULL << 62, UINT64_MAX - 1, UINT64_MAX};
  for (const uint64_t v : probes) {
    const int idx = MetricHistogram::BucketIndex(v);
    ASSERT_GE(idx, 0) << v;
    ASSERT_LT(idx, MetricHistogram::kNumBuckets) << v;
    EXPECT_LE(MetricHistogram::BucketLowerBound(idx), v) << v;
    // Upper bounds are exclusive except the top bucket, which is capped
    // at (and includes) UINT64_MAX.
    if (v == UINT64_MAX) {
      EXPECT_EQ(MetricHistogram::BucketUpperBound(idx), UINT64_MAX);
    } else {
      EXPECT_GT(MetricHistogram::BucketUpperBound(idx), v) << v;
    }
  }
}

TEST(MetricHistogramTest, PowerOfTwoBoundaries) {
  for (int shift = 2; shift < 63; ++shift) {
    const uint64_t pow2 = 1ULL << shift;
    // 2^k-1 and 2^k land in adjacent groups; 2^k starts its own bucket.
    const int below = MetricHistogram::BucketIndex(pow2 - 1);
    const int at = MetricHistogram::BucketIndex(pow2);
    const int above = MetricHistogram::BucketIndex(pow2 + 1);
    EXPECT_EQ(at, below + 1) << shift;
    EXPECT_EQ(MetricHistogram::BucketLowerBound(at), pow2) << shift;
    // 2^k and 2^k+1 share a bucket once the sub-bucket width exceeds 1.
    EXPECT_EQ(above, shift <= 2 ? at + 1 : at) << shift;
  }
}

TEST(MetricHistogramTest, BucketIndexIsMonotonicAndBoundsTile) {
  uint64_t prev_lower = 0;
  for (int idx = 0; idx < MetricHistogram::kNumBuckets; ++idx) {
    const uint64_t lower = MetricHistogram::BucketLowerBound(idx);
    EXPECT_EQ(MetricHistogram::BucketIndex(lower), idx);
    if (idx > 0) {
      EXPECT_GT(lower, prev_lower);
      // Buckets tile the axis: this lower bound is the previous upper.
      EXPECT_EQ(MetricHistogram::BucketUpperBound(idx - 1), lower);
    }
    prev_lower = lower;
  }
  EXPECT_EQ(
      MetricHistogram::BucketUpperBound(MetricHistogram::kNumBuckets - 1),
      UINT64_MAX);
}

TEST(MetricHistogramTest, RelativeBucketWidthIsBounded) {
  // For values >= 4 the bucket width is at most 25% of the lower bound —
  // the guarantee the quantile interpolation accuracy rests on.
  for (int idx = 4; idx < MetricHistogram::kNumBuckets - 1; ++idx) {
    const double lower =
        static_cast<double>(MetricHistogram::BucketLowerBound(idx));
    const double upper =
        static_cast<double>(MetricHistogram::BucketUpperBound(idx));
    EXPECT_LE(upper - lower, lower * 0.25 + 1e-9) << idx;
  }
}

// ---------------------------------------------------------------------------
// Recording and quantiles.

TEST(MetricHistogramTest, AggregatesAreExact) {
  MetricHistogram h;
  uint64_t want_sum = 0;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v * 7);
    want_sum += v * 7;
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, want_sum);
  EXPECT_EQ(snap.min, 7u);
  EXPECT_EQ(snap.max, 7000u);
}

TEST(MetricHistogramTest, EmptySnapshotIsZero) {
  MetricHistogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
}

TEST(MetricHistogramTest, QuantilesOnUniformDistribution) {
  MetricHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  // Bucket width is <= 25% of the value, so an interpolated quantile is
  // within 25% of the true order statistic.
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double truth = q * 10000.0;
    const double got = snap.Quantile(q);
    EXPECT_NEAR(got, truth, truth * 0.25) << q;
  }
  EXPECT_EQ(snap.Quantile(0.0), 1.0);   // clamped to min
  EXPECT_EQ(snap.Quantile(1.0), 10000.0);  // clamped to max
}

TEST(MetricHistogramTest, QuantileOfSingleValueIsThatValue) {
  MetricHistogram h;
  h.Record(4242);
  const HistogramSnapshot snap = h.Snapshot();
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(snap.Quantile(q), 4242.0) << q;
  }
}

TEST(MetricHistogramTest, MergeMatchesCombinedRecording) {
  MetricHistogram a;
  MetricHistogram b;
  MetricHistogram combined;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng() % 1000000;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot want = combined.Snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum, want.sum);
  EXPECT_EQ(merged.min, want.min);
  EXPECT_EQ(merged.max, want.max);
  EXPECT_EQ(merged.buckets, want.buckets);
}

TEST(MetricHistogramTest, MergeIntoEmptyAdoptsOther) {
  MetricHistogram h;
  h.Record(10);
  h.Record(90);
  HistogramSnapshot empty;
  empty.Merge(h.Snapshot());
  EXPECT_EQ(empty.count, 2u);
  EXPECT_EQ(empty.min, 10u);
  EXPECT_EQ(empty.max, 90u);
  HistogramSnapshot merged = h.Snapshot();
  merged.Merge(HistogramSnapshot{});  // merging empty is a no-op
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.min, 10u);
}

// ---------------------------------------------------------------------------
// Concurrency: exactness after join, and data-race freedom (TSan) while a
// snapshotter races the writers.

TEST(MetricsConcurrencyTest, ConcurrentWritersAreExactAfterJoin) {
  MetricHistogram h;
  MetricCounter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        h.Record(i % 1024);
        c.Add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1023u);
}

TEST(MetricsConcurrencyTest, SnapshotWhileWritingIsInternallyConsistent) {
  MetricHistogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v++ % 4096);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const HistogramSnapshot snap = h.Snapshot();
    uint64_t bucket_total = 0;
    for (const uint64_t b : snap.buckets) bucket_total += b;
    // The invariant the export relies on: count IS the bucket sum.
    EXPECT_EQ(snap.count, bucket_total);
    if (snap.count > 0) {
      EXPECT_LE(snap.min, snap.max);
      EXPECT_LT(snap.max, 4096u);
    }
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
}

// ---------------------------------------------------------------------------
// Counter / gauge basics.

TEST(MetricCounterTest, AddsAccumulate) {
  MetricCounter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(MetricGaugeTest, DeltaAndSet) {
  MetricGauge g;
  g.Add(10);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  MetricCounter& a = reg.GetCounter("test.registry_identity_total");
  MetricCounter& b = reg.GetCounter("test.registry_identity_total");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
  MetricHistogram& ha = reg.GetHistogram("test.registry_identity_ns");
  MetricHistogram& hb = reg.GetHistogram("test.registry_identity_ns");
  EXPECT_EQ(&ha, &hb);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.GetCounter("test.snapshot_b_total").Add(2);
  reg.GetCounter("test.snapshot_a_total").Add(1);
  reg.GetGauge("test.snapshot_gauge").Set(9);
  reg.GetHistogram("test.snapshot_ns").Record(100);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; }));
  bool saw_a = false;
  bool saw_b = false;
  for (const auto& entry : snap.counters) {
    if (entry.first == "test.snapshot_a_total") {
      saw_a = true;
      EXPECT_EQ(entry.second, 1u);
    }
    if (entry.first == "test.snapshot_b_total") {
      saw_b = true;
      EXPECT_EQ(entry.second, 2u);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

TEST(MetricsPrometheusTest, RendersWellFormedFamilies) {
  MetricsRegistry& reg = MetricsRegistry::Get();
  reg.GetCounter("test.prom_total").Add(5);
  reg.GetGauge("test.prom_gauge").Set(-2);
  MetricHistogram& h = reg.GetHistogram("test.prom_ns");
  h.Record(1);
  h.Record(1000);
  h.Record(1000000);
  const std::string text = MetricsPrometheusText();
  EXPECT_NE(text.find("# TYPE cpclean_test_prom_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cpclean_test_prom_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("cpclean_test_prom_gauge -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cpclean_test_prom_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("cpclean_test_prom_ns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cpclean_test_prom_ns_count"), std::string::npos);
  EXPECT_NE(text.find("cpclean_test_prom_ns_sum"), std::string::npos);

  // Cumulative bucket counts are nondecreasing and end at count.
  std::istringstream lines(text);
  std::string line;
  uint64_t prev = 0;
  uint64_t last = 0;
  bool saw_bucket = false;
  while (std::getline(lines, line)) {
    if (line.rfind("cpclean_test_prom_ns_bucket", 0) != 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    const uint64_t v = std::stoull(line.substr(space + 1));
    EXPECT_GE(v, prev);
    prev = v;
    last = v;
    saw_bucket = true;
  }
  EXPECT_TRUE(saw_bucket);
  EXPECT_GE(last, 3u);  // +Inf bucket covers every recording
}

// ---------------------------------------------------------------------------
// Spans.

TEST(RequestSpanTest, ScopedPhaseAccumulatesIntoActiveSpan) {
  RequestSpan span;
  span.SetOp("q2");
  EXPECT_STREQ(span.op, "q2");
  {
    ScopedActiveSpan active(&span);
    EXPECT_EQ(ActiveRequestSpan(), &span);
    {
      ScopedSpanPhase phase(kSpanKernelCompute);
      // Spin briefly so the phase records a nonzero duration.
      const uint64_t start = MonotonicNowNs();
      while (MonotonicNowNs() - start < 1000) {
      }
    }
    { ScopedSpanPhase phase(kSpanSerialize); }
  }
  EXPECT_EQ(ActiveRequestSpan(), nullptr);
  EXPECT_GT(span.phase_ns[kSpanKernelCompute], 0u);
  EXPECT_EQ(span.phase_ns[kSpanQueueWait], 0u);
}

TEST(RequestSpanTest, NoActiveSpanMeansNoOp) {
  ASSERT_EQ(ActiveRequestSpan(), nullptr);
  { ScopedSpanPhase phase(kSpanFlush); }  // must not crash or record
}

TEST(RequestSpanTest, NestedScopesRestorePrevious) {
  RequestSpan outer;
  RequestSpan inner;
  ScopedActiveSpan a(&outer);
  {
    ScopedActiveSpan b(&inner);
    EXPECT_EQ(ActiveRequestSpan(), &inner);
  }
  EXPECT_EQ(ActiveRequestSpan(), &outer);
}

TEST(RequestSpanTest, LongOpNameIsTruncatedSafely) {
  RequestSpan span;
  span.SetOp("an_operation_name_well_beyond_the_buffer");
  EXPECT_EQ(std::string(span.op).size(), sizeof(span.op) - 1);
}

TEST(SpanRingTest, RetainsNewestUpToCapacityOldestFirst) {
  SpanRing ring(4);
  for (int i = 0; i < 10; ++i) {
    RequestSpan span;
    span.total_ns = static_cast<uint64_t>(i);
    ring.Push(span);
  }
  const std::vector<RequestSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<size_t>(i)].total_ns,
              static_cast<uint64_t>(6 + i));
  }
}

TEST(SpanRingTest, PartialFillSnapshots) {
  SpanRing ring(8);
  EXPECT_TRUE(ring.Snapshot().empty());
  RequestSpan span;
  span.total_ns = 77;
  ring.Push(span);
  const std::vector<RequestSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].total_ns, 77u);
}

}  // namespace
}  // namespace cpclean
