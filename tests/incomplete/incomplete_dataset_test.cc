#include "incomplete/incomplete_dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cpclean {
namespace {

IncompleteDataset MakeDataset() {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({1.0, 2.0}, 0).ok());
  CP_CHECK(dataset.AddExample({{{3.0, 4.0}, {5.0, 6.0}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}, 0}).ok());
  return dataset;
}

TEST(IncompleteDatasetTest, BasicAccessors) {
  const IncompleteDataset dataset = MakeDataset();
  EXPECT_EQ(dataset.num_examples(), 3);
  EXPECT_EQ(dataset.num_labels(), 2);
  EXPECT_EQ(dataset.dim(), 2);
  EXPECT_EQ(dataset.num_candidates(0), 1);
  EXPECT_EQ(dataset.num_candidates(2), 3);
  EXPECT_EQ(dataset.max_candidates(), 3);
  EXPECT_EQ(dataset.label(1), 1);
  EXPECT_EQ(dataset.candidate(1, 1), (std::vector<double>{5.0, 6.0}));
}

TEST(IncompleteDatasetTest, ValidationRejectsBadExamples) {
  IncompleteDataset dataset(2);
  // Empty candidate set.
  EXPECT_FALSE(dataset.AddExample({{}, 0}).ok());
  // Label out of range.
  EXPECT_FALSE(dataset.AddExample({{{1.0}}, 2}).ok());
  EXPECT_FALSE(dataset.AddExample({{{1.0}}, -1}).ok());
  // Inconsistent dims within a candidate set.
  EXPECT_FALSE(dataset.AddExample({{{1.0}, {1.0, 2.0}}, 0}).ok());
  // Dim mismatch across examples.
  ASSERT_TRUE(dataset.AddCleanExample({1.0, 2.0}, 0).ok());
  EXPECT_FALSE(dataset.AddCleanExample({1.0}, 0).ok());
}

TEST(IncompleteDatasetTest, CompletenessAndDirtyList) {
  IncompleteDataset dataset = MakeDataset();
  EXPECT_FALSE(dataset.IsComplete());
  EXPECT_EQ(dataset.DirtyExamples(), (std::vector<int>{1, 2}));
  dataset.FixExample(1, 0);
  dataset.FixExample(2, 2);
  EXPECT_TRUE(dataset.IsComplete());
  EXPECT_TRUE(dataset.DirtyExamples().empty());
}

TEST(IncompleteDatasetTest, WorldCounting) {
  const IncompleteDataset dataset = MakeDataset();
  EXPECT_EQ(dataset.NumPossibleWorlds(), BigUint(6));  // 1 * 2 * 3
  EXPECT_NEAR(dataset.Log2NumPossibleWorlds(), std::log2(6.0), 1e-12);
}

TEST(IncompleteDatasetTest, FixExampleKeepsChosenValue) {
  IncompleteDataset dataset = MakeDataset();
  dataset.FixExample(2, 1);
  EXPECT_EQ(dataset.num_candidates(2), 1);
  EXPECT_EQ(dataset.candidate(2, 0), (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(dataset.NumPossibleWorlds(), BigUint(2));
}

TEST(IncompleteDatasetTest, ReplaceCandidates) {
  IncompleteDataset dataset = MakeDataset();
  dataset.ReplaceCandidates(0, {{9.0, 9.0}, {8.0, 8.0}});
  EXPECT_EQ(dataset.num_candidates(0), 2);
  EXPECT_EQ(dataset.NumPossibleWorlds(), BigUint(12));
}

}  // namespace
}  // namespace cpclean
