#include "incomplete/incomplete_dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cpclean {
namespace {

IncompleteDataset MakeDataset() {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({1.0, 2.0}, 0).ok());
  CP_CHECK(dataset.AddExample({{{3.0, 4.0}, {5.0, 6.0}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}, 0}).ok());
  return dataset;
}

TEST(IncompleteDatasetTest, BasicAccessors) {
  const IncompleteDataset dataset = MakeDataset();
  EXPECT_EQ(dataset.num_examples(), 3);
  EXPECT_EQ(dataset.num_labels(), 2);
  EXPECT_EQ(dataset.dim(), 2);
  EXPECT_EQ(dataset.num_candidates(0), 1);
  EXPECT_EQ(dataset.num_candidates(2), 3);
  EXPECT_EQ(dataset.max_candidates(), 3);
  EXPECT_EQ(dataset.label(1), 1);
  EXPECT_EQ(dataset.candidate(1, 1), (std::vector<double>{5.0, 6.0}));
}

TEST(IncompleteDatasetTest, ValidationRejectsBadExamples) {
  IncompleteDataset dataset(2);
  // Empty candidate set.
  EXPECT_FALSE(dataset.AddExample({{}, 0}).ok());
  // Label out of range.
  EXPECT_FALSE(dataset.AddExample({{{1.0}}, 2}).ok());
  EXPECT_FALSE(dataset.AddExample({{{1.0}}, -1}).ok());
  // Inconsistent dims within a candidate set.
  EXPECT_FALSE(dataset.AddExample({{{1.0}, {1.0, 2.0}}, 0}).ok());
  // Dim mismatch across examples.
  ASSERT_TRUE(dataset.AddCleanExample({1.0, 2.0}, 0).ok());
  EXPECT_FALSE(dataset.AddCleanExample({1.0}, 0).ok());
}

TEST(IncompleteDatasetTest, CompletenessAndDirtyList) {
  IncompleteDataset dataset = MakeDataset();
  EXPECT_FALSE(dataset.IsComplete());
  EXPECT_EQ(dataset.DirtyExamples(), (std::vector<int>{1, 2}));
  dataset.FixExample(1, 0);
  dataset.FixExample(2, 2);
  EXPECT_TRUE(dataset.IsComplete());
  EXPECT_TRUE(dataset.DirtyExamples().empty());
}

TEST(IncompleteDatasetTest, WorldCounting) {
  const IncompleteDataset dataset = MakeDataset();
  EXPECT_EQ(dataset.NumPossibleWorlds(), BigUint(6));  // 1 * 2 * 3
  EXPECT_NEAR(dataset.Log2NumPossibleWorlds(), std::log2(6.0), 1e-12);
}

TEST(IncompleteDatasetTest, FixExampleKeepsChosenValue) {
  IncompleteDataset dataset = MakeDataset();
  dataset.FixExample(2, 1);
  EXPECT_EQ(dataset.num_candidates(2), 1);
  EXPECT_EQ(dataset.candidate(2, 0), (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(dataset.NumPossibleWorlds(), BigUint(2));
}

TEST(IncompleteDatasetTest, ReplaceCandidates) {
  IncompleteDataset dataset = MakeDataset();
  dataset.ReplaceCandidates(0, {{9.0, 9.0}, {8.0, 8.0}});
  EXPECT_EQ(dataset.num_candidates(0), 2);
  EXPECT_EQ(dataset.NumPossibleWorlds(), BigUint(12));
}

// --- Flat mirror ------------------------------------------------------------

// Every active candidate must be readable through the flat view, and its
// cached squared norm must match the vector view.
void ExpectFlatMirrorsVectors(const IncompleteDataset& dataset) {
  for (int i = 0; i < dataset.num_examples(); ++i) {
    for (int j = 0; j < dataset.num_candidates(i); ++j) {
      const std::vector<double>& want = dataset.candidate(i, j);
      const double* got = dataset.candidate_ptr(i, j);
      double sq = 0.0;
      for (int d = 0; d < dataset.dim(); ++d) {
        EXPECT_DOUBLE_EQ(got[d], want[static_cast<size_t>(d)])
            << "candidate (" << i << "," << j << ") dim " << d;
        sq += want[static_cast<size_t>(d)] * want[static_cast<size_t>(d)];
      }
      EXPECT_DOUBLE_EQ(dataset.candidate_sq_norm(i, j), sq);
      EXPECT_EQ(got, dataset.flat_data() +
                         static_cast<size_t>(dataset.flat_row(i, j)) *
                             static_cast<size_t>(dataset.dim()));
    }
  }
}

TEST(IncompleteDatasetFlatTest, FreshDatasetIsCompactAndMirrored) {
  const IncompleteDataset dataset = MakeDataset();
  EXPECT_EQ(dataset.total_candidates(), 6);
  EXPECT_TRUE(dataset.flat_is_compact());
  ExpectFlatMirrorsVectors(dataset);
  // Example rows are adjacent: example 1 starts right after example 0.
  EXPECT_EQ(dataset.flat_row(0, 0), 0);
  EXPECT_EQ(dataset.flat_row(1, 0), 1);
  EXPECT_EQ(dataset.flat_row(2, 0), 3);
}

TEST(IncompleteDatasetFlatTest, FixExampleCollapsesInPlace) {
  IncompleteDataset dataset = MakeDataset();
  dataset.FixExample(2, 1);
  EXPECT_EQ(dataset.total_candidates(), 4);
  // Retired rows stay in the slab (stable offsets), so it is not compact.
  EXPECT_FALSE(dataset.flat_is_compact());
  ExpectFlatMirrorsVectors(dataset);
  EXPECT_DOUBLE_EQ(dataset.candidate_ptr(2, 0)[0], 1.0);
  EXPECT_DOUBLE_EQ(dataset.candidate_sq_norm(2, 0), 2.0);
}

TEST(IncompleteDatasetFlatTest, ReplaceWithinCapacityKeepsOffsets) {
  IncompleteDataset dataset = MakeDataset();
  const double* slab_before = dataset.flat_data();
  const int start_before = dataset.flat_row(2, 0);
  dataset.ReplaceCandidates(2, {{7.0, 7.0}, {6.0, 5.0}});  // 3 -> 2 slots
  EXPECT_EQ(dataset.flat_row(2, 0), start_before);
  EXPECT_EQ(dataset.flat_data(), slab_before);
  ExpectFlatMirrorsVectors(dataset);
  // Shrink-then-restore (the slow selection path's save/restore pattern)
  // stays within the example's original capacity.
  dataset.ReplaceCandidates(2, {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}});
  EXPECT_EQ(dataset.flat_row(2, 0), start_before);
  ExpectFlatMirrorsVectors(dataset);
}

TEST(IncompleteDatasetFlatTest, ReplaceBeyondCapacityRelaysTheSlab) {
  IncompleteDataset dataset = MakeDataset();
  dataset.ReplaceCandidates(0, {{9.0, 9.0}, {8.0, 8.0}});  // capacity 1 -> 2
  EXPECT_EQ(dataset.total_candidates(), 7);
  EXPECT_TRUE(dataset.flat_is_compact());  // rebuild re-compacts everything
  ExpectFlatMirrorsVectors(dataset);
  EXPECT_EQ(dataset.flat_row(1, 0), 2);  // offsets shifted by the growth
}

TEST(IncompleteDatasetFlatTest, MirrorSurvivesMixedMutation) {
  IncompleteDataset dataset = MakeDataset();
  dataset.FixExample(1, 1);
  dataset.ReplaceCandidates(2, {{4.0, 4.0}, {5.0, 5.0}, {6.0, 6.0},
                                {7.0, 7.0}});  // grows: rebuild
  ASSERT_TRUE(dataset.AddExample({{{1.5, 2.5}, {3.5, 4.5}}, 1}).ok());
  dataset.FixExample(3, 0);
  ExpectFlatMirrorsVectors(dataset);
  EXPECT_EQ(dataset.total_candidates(), 1 + 1 + 4 + 1);
}

}  // namespace
}  // namespace cpclean
