// The append-only cleaning log: checksummed record round-trips, torn-tail
// recovery, corruption detection, replay equivalence against direct
// mutation, and the injected log.append / log.fsync / log.replay faults.

#include "incomplete/cleaning_log.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::RandomDatasetSpec;

std::string FreshLogPath(const std::string& leaf) {
  const std::string path =
      ::testing::TempDir() + "/cpclean_" + leaf + ".cplog";
  std::filesystem::remove(path);
  return path;
}

size_t FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(size);
}

std::string ReadAll(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(file),
                     std::istreambuf_iterator<char>());
}

MutationRecord Fix(uint64_t seq, int example, int candidate) {
  MutationRecord record;
  record.kind = MutationRecord::Kind::kFix;
  record.seq = seq;
  record.example = example;
  record.candidate = candidate;
  return record;
}

bool RecordsEqual(const MutationRecord& a, const MutationRecord& b) {
  return a.kind == b.kind && a.seq == b.seq && a.example == b.example &&
         a.candidate == b.candidate && a.label == b.label &&
         a.candidates == b.candidates;
}

class CleaningLogTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Clear(); }
};

TEST_F(CleaningLogTest, EncodeDecodeRoundTripsEveryKind) {
  MutationRecord fix = Fix(7, 3, 1);

  MutationRecord replace;
  replace.kind = MutationRecord::Kind::kReplace;
  replace.seq = 8;
  replace.example = 2;
  // Values unrepresentable in short decimal: the hex-float encoding must
  // reproduce them bit-for-bit.
  replace.candidates = {{1.0 / 3.0, -2.0e-17}, {1e300, -0.0}};

  MutationRecord add;
  add.kind = MutationRecord::Kind::kAdd;
  add.seq = 9;
  add.label = 1;
  add.candidates = {{0.1, 0.2}, {3.3333333333333331, -1.5}};

  for (const MutationRecord& record : {fix, replace, add}) {
    const std::string line = EncodeLogRecord(record);
    const Result<MutationRecord> decoded = DecodeLogRecord(line);
    ASSERT_TRUE(decoded.ok()) << line;
    EXPECT_TRUE(RecordsEqual(record, decoded.value())) << line;
  }
}

TEST_F(CleaningLogTest, DecodeRejectsCorruption) {
  const std::string line = EncodeLogRecord(Fix(5, 2, 0));
  // Body flip: checksum mismatch.
  std::string body_flip = line;
  body_flip[0] = 'g';
  EXPECT_FALSE(DecodeLogRecord(body_flip).ok());
  // Checksum flip.
  std::string sum_flip = line;
  sum_flip.back() = sum_flip.back() == '0' ? '1' : '0';
  EXPECT_FALSE(DecodeLogRecord(sum_flip).ok());
  // Truncation (a torn line).
  EXPECT_FALSE(DecodeLogRecord(line.substr(0, line.size() - 3)).ok());
  EXPECT_FALSE(DecodeLogRecord("").ok());
}

TEST_F(CleaningLogTest, AppendScanRoundTrip) {
  const std::string path = FreshLogPath("roundtrip");
  const std::vector<MutationRecord> records = {Fix(1, 0, 1), Fix(2, 3, 0),
                                               Fix(3, 1, 2)};
  // Two appends: the second must extend, not rewrite.
  ASSERT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(records[0])}).ok());
  ASSERT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(records[1]),
                                       EncodeLogRecord(records[2])})
                  .ok());
  const Result<LogScan> scan = ScanCleaningLog(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan.value().truncated_tail);
  EXPECT_EQ(scan.value().last_seq, 3u);
  EXPECT_EQ(scan.value().durable_bytes, FileSize(path));
  ASSERT_EQ(scan.value().records.size(), 3u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(records[i], scan.value().records[i]));
  }
}

TEST_F(CleaningLogTest, MissingFileScansEmpty) {
  const Result<LogScan> scan = ScanCleaningLog(FreshLogPath("missing"));
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().records.empty());
  EXPECT_EQ(scan.value().durable_bytes, 0u);
}

TEST_F(CleaningLogTest, TornTailDroppedAndTruncatedForAppend) {
  const std::string path = FreshLogPath("torn");
  ASSERT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(Fix(1, 0, 1)),
                                       EncodeLogRecord(Fix(2, 1, 0))})
                  .ok());
  const size_t durable = FileSize(path);
  {
    // A killed append leaves half a line with no newline.
    std::ofstream file(path, std::ios::app | std::ios::binary);
    file << EncodeLogRecord(Fix(3, 2, 0)).substr(0, 10);
  }
  const Result<LogScan> scan = ScanCleaningLog(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().truncated_tail);
  EXPECT_EQ(scan.value().records.size(), 2u);
  EXPECT_EQ(scan.value().durable_bytes, durable);
  // ScanCleaningLog never modifies the file; ForAppend truncates the torn
  // tail so the next append lands on a record boundary.
  EXPECT_GT(FileSize(path), durable);
  ASSERT_TRUE(ScanCleaningLogForAppend(path).ok());
  EXPECT_EQ(FileSize(path), durable);
  ASSERT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(Fix(3, 2, 0))}).ok());
  const Result<LogScan> healed = ScanCleaningLog(path);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed.value().truncated_tail);
  EXPECT_EQ(healed.value().records.size(), 3u);
}

TEST_F(CleaningLogTest, MidFileCorruptionIsAnError) {
  const std::string path = FreshLogPath("midfile");
  ASSERT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(Fix(1, 0, 1)),
                                       EncodeLogRecord(Fix(2, 1, 0))})
                  .ok());
  std::string bytes = ReadAll(path);
  // Flip one byte of the FIRST record's body: damage before the tail is
  // corruption, never silently dropped.
  const size_t pos = bytes.find("fix 1");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 'g';
  {
    std::ofstream file(path, std::ios::trunc | std::ios::binary);
    file << bytes;
  }
  EXPECT_FALSE(ScanCleaningLog(path).ok());
}

TEST_F(CleaningLogTest, NonIncreasingSequenceIsAnError) {
  const std::string path = FreshLogPath("seq");
  ASSERT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(Fix(2, 0, 1)),
                                       EncodeLogRecord(Fix(2, 1, 0))})
                  .ok());
  EXPECT_FALSE(ScanCleaningLog(path).ok());
}

TEST_F(CleaningLogTest, ReplayMatchesDirectMutation) {
  RandomDatasetSpec spec;
  spec.num_examples = 8;
  spec.max_candidates = 4;
  spec.num_labels = 2;
  spec.dim = 3;
  spec.seed = 21;
  IncompleteDataset live = MakeRandomDataset(spec);
  const IncompleteDataset base = live;  // value snapshot at version v0
  const uint64_t v0 = base.version();

  live.EnableJournal();
  live.FixExample(1, 1);
  live.ReplaceCandidates(4, {{0.5, -0.5, 1.0 / 3.0}, {1e10, 0.0, -2.0}});
  IncompleteExample extra;
  extra.label = 1;
  extra.candidates = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  ASSERT_TRUE(live.AddExample(extra).ok());
  live.FixExample(6, 0);

  // Round-trip the journal through the on-disk format.
  const std::string path = FreshLogPath("replay");
  std::vector<std::string> lines;
  for (const MutationRecord& record : live.JournalSince(v0)) {
    lines.push_back(EncodeLogRecord(record));
  }
  ASSERT_TRUE(AppendCleaningLog(path, lines).ok());
  const Result<LogScan> scan = ScanCleaningLog(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.value().records.size(), 4u);

  IncompleteDataset replayed = base;
  std::vector<int> fixed;
  ASSERT_TRUE(
      ReplayCleaningLog(scan.value().records, v0, &replayed, &fixed).ok());
  EXPECT_TRUE(BitIdentical(live, replayed));
  EXPECT_EQ(replayed.version(), live.version());
  EXPECT_EQ(fixed, (std::vector<int>{1, 6}));
}

TEST_F(CleaningLogTest, ReplayFromSeqSkipsAlreadyApplied) {
  RandomDatasetSpec spec;
  spec.num_examples = 6;
  spec.seed = 33;
  IncompleteDataset live = MakeRandomDataset(spec);
  const uint64_t v0 = live.version();
  live.EnableJournal();
  live.FixExample(0, 0);
  const IncompleteDataset mid = live;  // already holds the first fix
  live.FixExample(2, 0);

  const std::vector<MutationRecord> all = live.JournalSince(v0);
  ASSERT_EQ(all.size(), 2u);
  IncompleteDataset replayed = mid;
  // from_seq = mid's version: the first record is skipped, not re-applied.
  ASSERT_TRUE(
      ReplayCleaningLog(all, mid.version(), &replayed, nullptr).ok());
  EXPECT_TRUE(BitIdentical(live, replayed));
}

TEST_F(CleaningLogTest, ReplaySequenceGapIsAnError) {
  RandomDatasetSpec spec;
  spec.num_examples = 6;
  spec.seed = 34;
  IncompleteDataset live = MakeRandomDataset(spec);
  IncompleteDataset base = live;
  const uint64_t v0 = live.version();
  live.EnableJournal();
  live.FixExample(0, 0);
  live.FixExample(2, 0);
  std::vector<MutationRecord> gapped = live.JournalSince(v0);
  gapped.erase(gapped.begin());  // drop the first mutation
  EXPECT_FALSE(ReplayCleaningLog(gapped, v0, &base, nullptr).ok());
}

TEST_F(CleaningLogTest, InjectedAppendFaultLeavesFileUntouched) {
  const std::string path = FreshLogPath("fault_append");
  ASSERT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(Fix(1, 0, 1))}).ok());
  const std::string before = ReadAll(path);
  ASSERT_TRUE(FaultInjection::Configure("log.append=once").ok());
  EXPECT_FALSE(AppendCleaningLog(path, {EncodeLogRecord(Fix(2, 1, 0))}).ok());
  EXPECT_EQ(ReadAll(path), before);
  // The rule was "once": the retry goes through.
  EXPECT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(Fix(2, 1, 0))}).ok());
}

TEST_F(CleaningLogTest, InjectedFsyncFaultTruncatesBack) {
  const std::string path = FreshLogPath("fault_fsync");
  ASSERT_TRUE(AppendCleaningLog(path, {EncodeLogRecord(Fix(1, 0, 1))}).ok());
  const std::string before = ReadAll(path);
  ASSERT_TRUE(FaultInjection::Configure("log.fsync=once").ok());
  // The bytes land, then the fsync fails: the append must truncate back
  // so the file never holds records that were not acknowledged durable.
  EXPECT_FALSE(AppendCleaningLog(path, {EncodeLogRecord(Fix(2, 1, 0))}).ok());
  EXPECT_EQ(ReadAll(path), before);
}

TEST_F(CleaningLogTest, InjectedReplayFaultSurfaces) {
  RandomDatasetSpec spec;
  spec.num_examples = 4;
  spec.seed = 35;
  IncompleteDataset live = MakeRandomDataset(spec);
  const uint64_t v0 = live.version();
  live.EnableJournal();
  live.FixExample(0, 0);
  IncompleteDataset base = live;
  ASSERT_TRUE(FaultInjection::Configure("log.replay=once").ok());
  EXPECT_FALSE(
      ReplayCleaningLog(live.JournalSince(v0), v0, &base, nullptr).ok());
}

}  // namespace
}  // namespace cpclean
