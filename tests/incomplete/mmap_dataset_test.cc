// The file-backed (mmap) candidate slab: bit-identity with RAM mode for
// every similarity kernel and compiled SIMD level, streamed multi-block
// scans, in-place and growing mutations while mapped, journal semantics,
// copy semantics, and the v3 (versioned) serialization round-trip.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/fault_injection.h"
#include "core/similarity.h"
#include "incomplete/incomplete_dataset.h"
#include "incomplete/serialization.h"
#include "knn/kernel.h"
#include "knn/kernel_simd.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::MakeRandomTestPoint;
using testing_util::RandomDatasetSpec;

IncompleteDataset MakeDataset(uint64_t seed, int num_examples = 20) {
  RandomDatasetSpec spec;
  spec.num_examples = num_examples;
  spec.max_candidates = 4;
  spec.num_labels = 2;
  spec.dim = 5;
  spec.seed = seed;
  return MakeRandomDataset(spec);
}

/// Backs `dataset` with an mmap scratch file (tiny window so streamed
/// scans need many blocks) and asserts it really switched modes.
void BackOrDie(IncompleteDataset* dataset, size_t window_bytes = 128) {
  const Status backed =
      dataset->BackWithFile(::testing::TempDir(), window_bytes);
  ASSERT_TRUE(backed.ok()) << backed.ToString();
  ASSERT_TRUE(dataset->file_backed());
}

std::vector<double> ScoresFor(const IncompleteDataset& dataset,
                              const std::vector<double>& t,
                              const SimilarityKernel& kernel) {
  std::vector<double> out(static_cast<size_t>(dataset.total_candidates()));
  SimilarityScores(dataset, t, kernel, out.data());
  return out;
}

void ExpectBitIdenticalScores(const std::vector<double>& want,
                              const std::vector<double>& got,
                              const std::string& context) {
  ASSERT_EQ(want.size(), got.size()) << context;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(std::memcmp(&want[i], &got[i], sizeof(double)), 0)
        << context << " row " << i << ": " << want[i] << " vs " << got[i];
  }
}

TEST(MmapDatasetTest, BackWithFilePreservesEveryByte) {
  const IncompleteDataset ram = MakeDataset(11);
  IncompleteDataset mapped = ram;
  BackOrDie(&mapped);
  EXPECT_TRUE(BitIdentical(ram, mapped));
  EXPECT_EQ(mapped.version(), ram.version());
  // The raw slab bytes are identical, not merely the logical values.
  const size_t doubles = static_cast<size_t>(ram.total_candidates()) *
                         static_cast<size_t>(ram.dim());
  EXPECT_EQ(std::memcmp(ram.flat_data(), mapped.flat_data(),
                        doubles * sizeof(double)),
            0);
  // Re-backing is a no-op that may retune the window.
  ASSERT_TRUE(mapped.BackWithFile(::testing::TempDir(), 4096).ok());
  EXPECT_EQ(mapped.stream_window_bytes(), 4096u);
}

TEST(MmapDatasetTest, StreamedScanBitIdenticalAcrossKernels) {
  const IncompleteDataset ram = MakeDataset(12, 40);
  IncompleteDataset mapped = ram;
  // 128-byte window, 5-double rows: 3 rows per block, so a 40-example
  // dataset streams through many blocks.
  BackOrDie(&mapped, 128);
  const std::vector<double> t = MakeRandomTestPoint(ram.dim(), 7);
  for (const KernelKind kind :
       {KernelKind::kNegativeEuclidean, KernelKind::kRbf, KernelKind::kLinear,
        KernelKind::kCosine}) {
    const std::unique_ptr<SimilarityKernel> kernel = MakeKernel(kind, 0.7);
    ExpectBitIdenticalScores(ScoresFor(ram, t, *kernel),
                             ScoresFor(mapped, t, *kernel), kernel->name());
  }
  // Degenerate windows are floored at one row per block.
  ASSERT_TRUE(mapped.BackWithFile(::testing::TempDir(), 1).ok());
  const std::unique_ptr<SimilarityKernel> kernel =
      MakeKernel(KernelKind::kNegativeEuclidean);
  ExpectBitIdenticalScores(ScoresFor(ram, t, *kernel),
                           ScoresFor(mapped, t, *kernel), "window=1");
}

TEST(MmapDatasetTest, SlabBitIdenticalAcrossCompiledSimdLevels) {
  const IncompleteDataset ram = MakeDataset(13, 17);
  IncompleteDataset mapped = ram;
  BackOrDie(&mapped);
  const int n = ram.total_candidates();
  const int dim = ram.dim();
  const std::vector<double> t = MakeRandomTestPoint(dim, 9);
  std::vector<double> want(static_cast<size_t>(n));
  std::vector<double> got(static_cast<size_t>(n));
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    const simd::KernelBatchTable* table = simd::TableForLevel(level);
    if (table == nullptr) continue;
    table->neg_euclidean_norms(ram.flat_data(), ram.flat_sq_norms(), n, dim,
                               t.data(), want.data());
    table->neg_euclidean_norms(mapped.flat_data(), mapped.flat_sq_norms(), n,
                               dim, t.data(), got.data());
    ExpectBitIdenticalScores(
        want, got, std::string("neg_euclidean ") + SimdLevelName(level));
    table->cosine_norms(ram.flat_data(), ram.flat_sq_norms(), n, dim,
                        t.data(), want.data());
    table->cosine_norms(mapped.flat_data(), mapped.flat_sq_norms(), n, dim,
                        t.data(), got.data());
    ExpectBitIdenticalScores(
        want, got, std::string("cosine ") + SimdLevelName(level));
  }
}

TEST(MmapDatasetTest, MutationsWhileMappedMatchRamTwin) {
  IncompleteDataset ram = MakeDataset(14);
  IncompleteDataset mapped = ram;
  BackOrDie(&mapped);
  const auto mutate = [](IncompleteDataset* d) {
    d->FixExample(2, 0);
    // Same-size replacement stays in place; the larger one forces the
    // slab to grow (file mode: remap) or rebuild.
    d->ReplaceCandidates(5, {{1.0, 2.0, 3.0, 4.0, 5.0}});
    d->ReplaceCandidates(
        7, {{0.1, 0.2, 0.3, 0.4, 0.5},
            {1.5, 2.5, 3.5, 4.5, 5.5},
            {-1.0, -2.0, -3.0, -4.0, -5.0},
            {9.0, 8.0, 7.0, 6.0, 5.0},
            {1.0 / 3.0, 2.0 / 3.0, 1e300, -0.0, 4.2}});
    IncompleteExample extra;
    extra.label = 1;
    extra.candidates = {{1.0, 1.0, 1.0, 1.0, 1.0},
                        {2.0, 2.0, 2.0, 2.0, 2.0}};
    ASSERT_TRUE(d->AddExample(std::move(extra)).ok());
    d->FixExample(0, 0);
  };
  mutate(&ram);
  mutate(&mapped);
  EXPECT_TRUE(mapped.file_backed());
  EXPECT_TRUE(BitIdentical(ram, mapped));
  EXPECT_EQ(mapped.version(), ram.version());
  const std::vector<double> t = MakeRandomTestPoint(ram.dim(), 5);
  const std::unique_ptr<SimilarityKernel> kernel =
      MakeKernel(KernelKind::kNegativeEuclidean);
  ExpectBitIdenticalScores(ScoresFor(ram, t, *kernel),
                           ScoresFor(mapped, t, *kernel), "post-mutation");
}

TEST(MmapDatasetTest, JournalRecordsMutationsSinceEnable) {
  IncompleteDataset dataset = MakeDataset(15);
  const uint64_t v0 = dataset.version();
  EXPECT_FALSE(dataset.journal_enabled());
  dataset.EnableJournal();
  EXPECT_TRUE(dataset.JournalCovers(v0));
  EXPECT_FALSE(dataset.JournalCovers(v0 - 1));
  dataset.FixExample(1, 0);
  dataset.FixExample(3, 0);
  const std::vector<MutationRecord> all = dataset.JournalSince(v0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].seq, v0 + 1);
  EXPECT_EQ(all[0].example, 1);
  EXPECT_EQ(all[1].seq, v0 + 2);
  EXPECT_EQ(all[1].example, 3);
  EXPECT_EQ(dataset.JournalSince(v0 + 1).size(), 1u);
  EXPECT_EQ(dataset.JournalSince(v0 + 2).size(), 0u);
}

TEST(MmapDatasetTest, CopiesMaterializeToRamAndDropJournal) {
  IncompleteDataset mapped = MakeDataset(16);
  BackOrDie(&mapped);
  mapped.EnableJournal();
  mapped.FixExample(0, 0);
  const IncompleteDataset copy = mapped;
  EXPECT_FALSE(copy.file_backed());
  EXPECT_FALSE(copy.journal_enabled());
  EXPECT_EQ(copy.version(), mapped.version());
  EXPECT_TRUE(BitIdentical(copy, mapped));
}

TEST(MmapDatasetTest, InjectedMapFaultLeavesRamMode) {
  IncompleteDataset dataset = MakeDataset(17);
  ASSERT_TRUE(FaultInjection::Configure("mmap.map=once").ok());
  EXPECT_FALSE(dataset.BackWithFile(::testing::TempDir(), 4096).ok());
  EXPECT_FALSE(dataset.file_backed());
  FaultInjection::Clear();
  // And the dataset is fully usable in RAM mode afterwards.
  EXPECT_TRUE(dataset.BackWithFile(::testing::TempDir(), 4096).ok());
}

TEST(MmapDatasetTest, V3SerializationCarriesVersion) {
  IncompleteDataset dataset = MakeDataset(18);
  dataset.FixExample(1, 0);
  const uint64_t version = dataset.version();
  const std::string text = SerializeIncompleteDatasetV3(dataset, {});
  const Result<DeserializedDatasetV2> parsed =
      DeserializeIncompleteDatasetV2(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().has_version);
  EXPECT_EQ(parsed.value().dataset.version(), version);
  EXPECT_TRUE(BitIdentical(dataset, parsed.value().dataset));
  // v2 text still parses, with no version claim.
  const Result<DeserializedDatasetV2> v2 = DeserializeIncompleteDatasetV2(
      SerializeIncompleteDatasetV2(dataset, {}));
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(v2.value().has_version);
}

}  // namespace
}  // namespace cpclean
