#include "incomplete/serialization.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::RandomDatasetSpec;

bool DatasetsEqual(const IncompleteDataset& a, const IncompleteDataset& b) {
  if (a.num_examples() != b.num_examples() || a.num_labels() != b.num_labels() ||
      a.dim() != b.dim()) {
    return false;
  }
  for (int i = 0; i < a.num_examples(); ++i) {
    if (a.label(i) != b.label(i)) return false;
    if (a.num_candidates(i) != b.num_candidates(i)) return false;
    for (int j = 0; j < a.num_candidates(i); ++j) {
      if (a.candidate(i, j) != b.candidate(i, j)) return false;
    }
  }
  return true;
}

TEST(SerializationTest, ExactRoundTrip) {
  RandomDatasetSpec spec;
  spec.num_examples = 14;
  spec.max_candidates = 4;
  spec.num_labels = 3;
  spec.dim = 5;
  spec.seed = 77;
  const IncompleteDataset original = MakeRandomDataset(spec);
  const std::string text = SerializeIncompleteDataset(original);
  const IncompleteDataset reloaded =
      DeserializeIncompleteDataset(text).value();
  EXPECT_TRUE(DatasetsEqual(original, reloaded));
}

TEST(SerializationTest, HexFloatsRoundTripBitExactly) {
  IncompleteDataset dataset(2);
  // Values chosen to be unrepresentable in short decimal.
  CP_CHECK(dataset.AddCleanExample({1.0 / 3.0, -2.0e-17}, 0).ok());
  CP_CHECK(dataset
               .AddExample({{{0.1, 0.2}, {3.3333333333333331, 1e300}}, 1})
               .ok());
  const IncompleteDataset reloaded =
      DeserializeIncompleteDataset(SerializeIncompleteDataset(dataset))
          .value();
  EXPECT_TRUE(DatasetsEqual(dataset, reloaded));
}

TEST(SerializationTest, CommentsAndBlankLinesIgnored) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({1.5}, 1).ok());
  std::string text = SerializeIncompleteDataset(dataset);
  text = "# a comment\n\n" + text + "\n# trailing\n";
  EXPECT_TRUE(DeserializeIncompleteDataset(text).ok());
}

TEST(SerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeIncompleteDataset("").ok());
  EXPECT_FALSE(DeserializeIncompleteDataset("wrong-magic 2 1\n").ok());
  EXPECT_FALSE(
      DeserializeIncompleteDataset("cpclean-incomplete-v1 2\n").ok());
  // Truncated candidate block.
  EXPECT_FALSE(DeserializeIncompleteDataset(
                   "cpclean-incomplete-v1 2 1\nexample 0 2\n0x1p+0\n")
                   .ok());
  // Wrong dimensionality.
  EXPECT_FALSE(DeserializeIncompleteDataset(
                   "cpclean-incomplete-v1 2 2\nexample 0 1\n0x1p+0\n")
                   .ok());
  // Label out of range is caught by AddExample.
  EXPECT_FALSE(DeserializeIncompleteDataset(
                   "cpclean-incomplete-v1 2 1\nexample 5 1\n0x1p+0\n")
                   .ok());
}

TEST(SerializationTest, FileRoundTrip) {
  RandomDatasetSpec spec;
  spec.num_examples = 6;
  spec.seed = 99;
  const IncompleteDataset original = MakeRandomDataset(spec);
  const std::string path =
      ::testing::TempDir() + "/cpclean_serialization_test.txt";
  ASSERT_TRUE(SaveIncompleteDataset(original, path).ok());
  const IncompleteDataset reloaded = LoadIncompleteDataset(path).value();
  EXPECT_TRUE(DatasetsEqual(original, reloaded));
  EXPECT_FALSE(LoadIncompleteDataset("/nonexistent/x.txt").ok());
}

TEST(SerializationTest, V2RoundTripsDatasetAndSections) {
  RandomDatasetSpec spec;
  spec.num_examples = 9;
  spec.max_candidates = 3;
  spec.num_labels = 2;
  spec.dim = 4;
  spec.seed = 123;
  const IncompleteDataset original = MakeRandomDataset(spec);
  const std::vector<SerializedSection> sections = {
      {"spec", {"{\"session\":\"a\",\"k\":3}"}},
      {"cleaning", {"cleaned 3 5 1 7"}},
  };
  const std::string text = SerializeIncompleteDatasetV2(original, sections);
  const DeserializedDatasetV2 parsed =
      DeserializeIncompleteDatasetV2(text).value();
  EXPECT_TRUE(DatasetsEqual(original, parsed.dataset));
  EXPECT_TRUE(BitIdentical(original, parsed.dataset));
  ASSERT_EQ(parsed.sections.size(), 2u);
  EXPECT_EQ(parsed.sections[0].name, "spec");
  ASSERT_EQ(parsed.sections[0].lines.size(), 1u);
  EXPECT_EQ(parsed.sections[0].lines[0], sections[0].lines[0]);
  EXPECT_EQ(parsed.sections[1].name, "cleaning");
  EXPECT_EQ(parsed.sections[1].lines, sections[1].lines);
}

TEST(SerializationTest, V1EntryPointAcceptsV2AndIgnoresSections) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({0.5, 1.5}, 0).ok());
  const std::string text = SerializeIncompleteDatasetV2(
      dataset, {{"extra", {"opaque payload"}}});
  const IncompleteDataset reloaded =
      DeserializeIncompleteDataset(text).value();
  EXPECT_TRUE(DatasetsEqual(dataset, reloaded));
}

TEST(SerializationTest, V2EntryPointAcceptsV1WithNoSections) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({2.25}, 1).ok());
  const DeserializedDatasetV2 parsed =
      DeserializeIncompleteDatasetV2(SerializeIncompleteDataset(dataset))
          .value();
  EXPECT_TRUE(DatasetsEqual(dataset, parsed.dataset));
  EXPECT_TRUE(parsed.sections.empty());
}

TEST(SerializationTest, V2RejectsMalformedSections) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({1.0}, 0).ok());
  const std::string base = SerializeIncompleteDatasetV2(dataset, {});
  // Unterminated section.
  EXPECT_FALSE(
      DeserializeIncompleteDatasetV2(base + "section hanging\npayload\n")
          .ok());
  // An example block after a section violates the trailer layout.
  EXPECT_FALSE(DeserializeIncompleteDatasetV2(
                   base + "section s\nx\nend\nexample 0 1\n0x1p+0\n")
                   .ok());
  // Sections in a v1 document are malformed example lines.
  std::string v1 = SerializeIncompleteDataset(dataset);
  EXPECT_FALSE(
      DeserializeIncompleteDatasetV2(v1 + "section s\nx\nend\n").ok());
}

TEST(SerializationTest, BitIdenticalDetectsValueAndShapeDrift) {
  IncompleteDataset a(2);
  CP_CHECK(a.AddExample({{{1.0}, {2.0}}, 1}).ok());
  IncompleteDataset b = a;
  EXPECT_TRUE(BitIdentical(a, b));
  b.FixExample(0, 0);
  EXPECT_FALSE(BitIdentical(a, b));  // candidate-count drift
  IncompleteDataset c(2);
  CP_CHECK(c.AddExample({{{1.0}, {2.0000000000000004}}, 1}).ok());
  EXPECT_FALSE(BitIdentical(a, c));  // one-ulp value drift
}

}  // namespace
}  // namespace cpclean
