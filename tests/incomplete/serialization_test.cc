#include "incomplete/serialization.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::RandomDatasetSpec;

bool DatasetsEqual(const IncompleteDataset& a, const IncompleteDataset& b) {
  if (a.num_examples() != b.num_examples() || a.num_labels() != b.num_labels() ||
      a.dim() != b.dim()) {
    return false;
  }
  for (int i = 0; i < a.num_examples(); ++i) {
    if (a.label(i) != b.label(i)) return false;
    if (a.num_candidates(i) != b.num_candidates(i)) return false;
    for (int j = 0; j < a.num_candidates(i); ++j) {
      if (a.candidate(i, j) != b.candidate(i, j)) return false;
    }
  }
  return true;
}

TEST(SerializationTest, ExactRoundTrip) {
  RandomDatasetSpec spec;
  spec.num_examples = 14;
  spec.max_candidates = 4;
  spec.num_labels = 3;
  spec.dim = 5;
  spec.seed = 77;
  const IncompleteDataset original = MakeRandomDataset(spec);
  const std::string text = SerializeIncompleteDataset(original);
  const IncompleteDataset reloaded =
      DeserializeIncompleteDataset(text).value();
  EXPECT_TRUE(DatasetsEqual(original, reloaded));
}

TEST(SerializationTest, HexFloatsRoundTripBitExactly) {
  IncompleteDataset dataset(2);
  // Values chosen to be unrepresentable in short decimal.
  CP_CHECK(dataset.AddCleanExample({1.0 / 3.0, -2.0e-17}, 0).ok());
  CP_CHECK(dataset
               .AddExample({{{0.1, 0.2}, {3.3333333333333331, 1e300}}, 1})
               .ok());
  const IncompleteDataset reloaded =
      DeserializeIncompleteDataset(SerializeIncompleteDataset(dataset))
          .value();
  EXPECT_TRUE(DatasetsEqual(dataset, reloaded));
}

TEST(SerializationTest, CommentsAndBlankLinesIgnored) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({1.5}, 1).ok());
  std::string text = SerializeIncompleteDataset(dataset);
  text = "# a comment\n\n" + text + "\n# trailing\n";
  EXPECT_TRUE(DeserializeIncompleteDataset(text).ok());
}

TEST(SerializationTest, RejectsMalformedInput) {
  EXPECT_FALSE(DeserializeIncompleteDataset("").ok());
  EXPECT_FALSE(DeserializeIncompleteDataset("wrong-magic 2 1\n").ok());
  EXPECT_FALSE(
      DeserializeIncompleteDataset("cpclean-incomplete-v1 2\n").ok());
  // Truncated candidate block.
  EXPECT_FALSE(DeserializeIncompleteDataset(
                   "cpclean-incomplete-v1 2 1\nexample 0 2\n0x1p+0\n")
                   .ok());
  // Wrong dimensionality.
  EXPECT_FALSE(DeserializeIncompleteDataset(
                   "cpclean-incomplete-v1 2 2\nexample 0 1\n0x1p+0\n")
                   .ok());
  // Label out of range is caught by AddExample.
  EXPECT_FALSE(DeserializeIncompleteDataset(
                   "cpclean-incomplete-v1 2 1\nexample 5 1\n0x1p+0\n")
                   .ok());
}

TEST(SerializationTest, FileRoundTrip) {
  RandomDatasetSpec spec;
  spec.num_examples = 6;
  spec.seed = 99;
  const IncompleteDataset original = MakeRandomDataset(spec);
  const std::string path =
      ::testing::TempDir() + "/cpclean_serialization_test.txt";
  ASSERT_TRUE(SaveIncompleteDataset(original, path).ok());
  const IncompleteDataset reloaded = LoadIncompleteDataset(path).value();
  EXPECT_TRUE(DatasetsEqual(original, reloaded));
  EXPECT_FALSE(LoadIncompleteDataset("/nonexistent/x.txt").ok());
}

}  // namespace
}  // namespace cpclean
