#include "incomplete/possible_worlds.h"

#include <gtest/gtest.h>

#include <set>

namespace cpclean {
namespace {

IncompleteDataset MakeDataset() {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({1.0}, 0).ok());
  CP_CHECK(dataset.AddExample({{{2.0}, {3.0}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{4.0}, {5.0}, {6.0}}, 0}).ok());
  return dataset;
}

TEST(PossibleWorldIteratorTest, EnumeratesAllDistinctWorlds) {
  const IncompleteDataset dataset = MakeDataset();
  std::set<WorldChoice> seen;
  int count = 0;
  for (PossibleWorldIterator it(&dataset); it.Valid(); it.Next()) {
    seen.insert(it.choice());
    ++count;
  }
  EXPECT_EQ(count, 6);
  EXPECT_EQ(seen.size(), 6u);
  // Choices stay within candidate bounds.
  for (const WorldChoice& choice : seen) {
    EXPECT_EQ(choice.size(), 3u);
    EXPECT_EQ(choice[0], 0);
    EXPECT_LT(choice[1], 2);
    EXPECT_LT(choice[2], 3);
  }
}

TEST(PossibleWorldIteratorTest, ResetRestartsEnumeration) {
  const IncompleteDataset dataset = MakeDataset();
  PossibleWorldIterator it(&dataset);
  it.Next();
  it.Next();
  it.Reset();
  EXPECT_TRUE(it.Valid());
  EXPECT_EQ(it.choice(), (WorldChoice{0, 0, 0}));
}

TEST(MaterializeWorldTest, PicksChosenCandidates) {
  const IncompleteDataset dataset = MakeDataset();
  const auto features = MaterializeWorld(dataset, {0, 1, 2});
  ASSERT_EQ(features.size(), 3u);
  EXPECT_EQ(features[0], (std::vector<double>{1.0}));
  EXPECT_EQ(features[1], (std::vector<double>{3.0}));
  EXPECT_EQ(features[2], (std::vector<double>{6.0}));
}

TEST(MaterializeWorldTest, LabelsAreWorldIndependent) {
  const IncompleteDataset dataset = MakeDataset();
  EXPECT_EQ(WorldLabels(dataset), (std::vector<int>{0, 1, 0}));
}

TEST(PossibleWorldIteratorTest, CompleteDatasetHasOneWorld) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({1.0}, 0).ok());
  CP_CHECK(dataset.AddCleanExample({2.0}, 1).ok());
  int count = 0;
  for (PossibleWorldIterator it(&dataset); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace cpclean
