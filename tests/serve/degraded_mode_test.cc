// The degraded read-only mode and snapshot write atomicity under
// injected disk faults: a failed write (open / short write / flush /
// rename) never touches the previous snapshot and never leaves a temp
// file behind; the store then fast-fails further writes inside an
// exponential-backoff window, probes the disk when it elapses, and heals
// on the first success; and at the server level an unwritable data dir
// flips stats to degraded:true while reads keep serving bit-identical
// answers, and heals back to degraded:false once the disk recovers.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "serve/server.h"
#include "serve/session_store.h"
#include "tests/serve/serve_test_util.h"

namespace cpclean {
namespace {

using serve_test::ParseOk;

class DegradedModeTest : public ::testing::Test {
 protected:
  // Fault rules are process-global; every test starts and ends clean.
  void SetUp() override { FaultInjection::Clear(); }
  void TearDown() override { FaultInjection::Clear(); }
};

/// A fresh empty data dir under the test tmpdir.
std::string FreshDataDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/cpclean_" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Files in `dir` whose name contains `needle`.
std::vector<std::string> FilesContaining(const std::string& dir,
                                         const std::string& needle) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(needle) != std::string::npos) out.push_back(name);
  }
  return out;
}

std::string CreateRequest(const std::string& name, int seed) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"store\",\"train_rows\":30,\"val_size\":4,"
      "\"test_size\":4,\"seed\":%d,\"numeric\":4,\"categorical\":0,"
      "\"noise_sigma\":0.3,\"missing_rate\":0.25,\"k\":3}",
      name.c_str(), seed);
}

/// Serialized q2 responses (exact JSON bits) for every validation index.
std::vector<std::string> Q2Sweep(Server* server, const std::string& name) {
  std::vector<std::string> out;
  for (int v = 0; v < 4; ++v) {
    const JsonValue result = ParseOk(server->HandleLine(
        StrFormat("{\"op\":\"q2\",\"session\":\"%s\",\"val_indices\":[%d]}",
                  name.c_str(), v)));
    out.push_back(result.Find("results")->array()[0].Dump());
  }
  return out;
}

bool StatsDegraded(Server* server) {
  return ParseOk(server->HandleLine("{\"op\":\"stats\"}"))
      .Find("degraded")
      ->bool_value();
}

TEST_F(DegradedModeTest, FailedWritesLeavePreviousSnapshotIntact) {
  const std::string dir = FreshDataDir("atomic");
  // Short backoff so the store is writable again quickly after each
  // injected failure.
  SessionStore store({dir, 0, 1024, 30, 120});

  ASSERT_TRUE(store.WriteSnapshot("s", "v1\n").ok());
  const std::string path = store.PathFor("s");
  ASSERT_EQ(ReadFile(path), "v1\n");

  // Every stage of the temp-write + rename pipeline fails in turn. None
  // may corrupt or replace the committed snapshot, and none may leave its
  // temp file behind.
  for (const char* fault :
       {"store.open=once", "store.write=once", "store.flush=once",
        "store.rename=once"}) {
    ASSERT_TRUE(FaultInjection::Configure(fault).ok());
    const Status failed = store.WriteSnapshot("s", "v2 must never land\n");
    EXPECT_EQ(failed.code(), StatusCode::kIoError) << fault;
    EXPECT_EQ(ReadFile(path), "v1\n") << fault;
    EXPECT_TRUE(FilesContaining(dir, ".tmp").empty()) << fault;

    // Heal: clear the fault, wait out the backoff window, and prove the
    // store writes again — then restore v1 for the next round.
    FaultInjection::Clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(store.WriteSnapshot("s", "v1\n").ok()) << fault;
    EXPECT_FALSE(store.CheckDegraded()) << fault;
  }
}

TEST_F(DegradedModeTest, DegradedModeFastFailsThenProbesAndHeals) {
  const std::string dir = FreshDataDir("degraded_fsm");
  SessionStore store({dir, 0, 1024, 50, 200});

  const auto site_hits = [] {
    for (const auto& s : FaultInjection::Stats()) {
      if (s.site == "store.open") return s.hits;
    }
    return uint64_t{0};
  };

  ASSERT_TRUE(FaultInjection::Configure("store.open=always").ok());
  EXPECT_EQ(store.WriteSnapshot("s", "x\n").code(), StatusCode::kIoError);
  EXPECT_EQ(site_hits(), 1u);
  EXPECT_TRUE(store.CheckDegraded());
  // Inside the backoff window: writes fast-fail without touching the disk
  // (the fault site is never reached) and without extending the backoff.
  EXPECT_EQ(store.WriteSnapshot("s", "x\n").code(), StatusCode::kIoError);
  EXPECT_EQ(site_hits(), 1u);

  // Window elapses → CheckDegraded probes (a real disk attempt, so the
  // site fires again), fails, and doubles the backoff.
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  EXPECT_TRUE(store.CheckDegraded());
  EXPECT_EQ(site_hits(), 2u);

  // Disk recovers; the next probe after the (now 100ms) window heals.
  FaultInjection::Clear();
  bool healed = false;
  for (int i = 0; i < 40 && !healed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    healed = !store.CheckDegraded();
  }
  EXPECT_TRUE(healed);
  // The probe cleans up after itself.
  EXPECT_TRUE(FilesContaining(dir, ".cpclean_probe").empty());
  EXPECT_TRUE(store.WriteSnapshot("s", "x\n").ok());
}

TEST_F(DegradedModeTest, ServerKeepsServingBitIdenticalWhileDegraded) {
  const std::string dir = FreshDataDir("degraded_server");
  ServerOptions options;
  options.data_dir = dir;
  Server server(options);
  ParseOk(server.HandleLine(CreateRequest("s", 11)));
  ParseOk(server.HandleLine("{\"op\":\"save_session\",\"session\":\"s\"}"));
  // Dirty the session so the next save has something to persist (an
  // unchanged session's save is a disk-less no-op under delta saves).
  ParseOk(server.HandleLine(
      "{\"op\":\"clean_step\",\"session\":\"s\",\"steps\":1}"));
  const std::vector<std::string> baseline = Q2Sweep(&server, "s");
  EXPECT_FALSE(StatsDegraded(&server));

  // The data dir becomes unwritable — both the delta log-append and the
  // full-snapshot path: saves fail with IoError, stats report it, and
  // queries are bit-identical to the healthy baseline.
  ASSERT_TRUE(FaultInjection::Configure(
                  "store.open=always;log.append=always")
                  .ok());
  const std::string failed =
      server.HandleLine("{\"op\":\"save_session\",\"session\":\"s\"}");
  EXPECT_NE(failed.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(failed.find("IO error"), std::string::npos);
  EXPECT_TRUE(StatsDegraded(&server));
  EXPECT_EQ(Q2Sweep(&server, "s"), baseline);
  ParseOk(server.HandleLine(
      "{\"op\":\"clean_step\",\"session\":\"s\",\"steps\":1}"));
  EXPECT_TRUE(StatsDegraded(&server));

  // Disk recovers: the stats poll's probe heals the store (possibly after
  // a couple of backoff windows), and saves work again.
  FaultInjection::Clear();
  bool healed = false;
  for (int i = 0; i < 60 && !healed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    healed = !StatsDegraded(&server);
  }
  EXPECT_TRUE(healed);
  ParseOk(server.HandleLine("{\"op\":\"save_session\",\"session\":\"s\"}"));
}

TEST_F(DegradedModeTest, EvictionSurfacesIoErrorWhileDegraded) {
  const std::string dir = FreshDataDir("degraded_evict");
  ServerOptions options;
  options.data_dir = dir;
  options.max_sessions = 1;
  Server server(options);
  ParseOk(server.HandleLine(CreateRequest("a", 1)));
  const std::vector<std::string> baseline = Q2Sweep(&server, "a");

  // Admitting a second session requires evicting (saving) the first; with
  // the disk unwritable that save fails, and create_session must surface
  // the IoError instead of silently discarding "a".
  ASSERT_TRUE(FaultInjection::Configure("store.open=always").ok());
  const std::string rejected = server.HandleLine(CreateRequest("b", 2));
  EXPECT_NE(rejected.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(rejected.find("IO error"), std::string::npos);

  // "a" is still resident and still bit-identical.
  EXPECT_EQ(Q2Sweep(&server, "a"), baseline);
}

}  // namespace
}  // namespace cpclean
