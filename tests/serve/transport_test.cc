// The epoll transport's contract: responses byte-identical to the line
// protocol's canonical rendering (Server::HandleLine) under partial
// writes, pipelining, and concurrent connections; thousands of idle
// connections held without threads; request-level admission control; and
// identical q2 requests coalescing into one evaluation under load.

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "serve/server.h"
#include "tests/serve/serve_test_util.h"

namespace cpclean {
namespace {

using serve_test::LineClient;
using serve_test::ParseOk;

std::string CreateRequest(const std::string& name, int train_rows) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"transport\",\"train_rows\":%d,"
      "\"val_size\":6,\"test_size\":4,\"seed\":41,\"numeric\":4,"
      "\"categorical\":0,\"noise_sigma\":0.3,\"missing_rate\":0.25,"
      "\"k\":3}",
      name.c_str(), train_rows);
}

/// Starts `server` on an ephemeral port on a background thread and waits
/// for the listener. Caller joins via the returned thread after Stop() or
/// a shutdown op.
std::thread Serve(Server& server) {
  std::thread serving([&server] {
    const Status status = server.ServeTcp(0);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  while (server.port() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.port(), 0);
  return serving;
}

TEST(TransportTest, PartialWritesFrameExactlyLikeHandleLine) {
  // A slow client dribbling bytes must get the same response bytes the
  // canonical line handler produces — framing is about byte boundaries,
  // never about write boundaries.
  Server server;
  Server twin;
  std::thread serving = Serve(server);
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  // One request split at an arbitrary byte, plus the head of the next.
  const std::string first = "{\"op\":\"ping\",\"id\":1}";
  const std::string second = "{\"op\":\"ping\",\"id\":2}";
  ASSERT_TRUE(client.Send(first + "\n" + second.substr(0, 9)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client.Send(second.substr(9) + "\n"));
  EXPECT_EQ(client.ReadLine(), twin.HandleLine(first));
  EXPECT_EQ(client.ReadLine(), twin.HandleLine(second));

  // Byte-at-a-time: the most hostile framing a client can produce.
  const std::string third = "{\"op\":\"ping\",\"id\":3}\n";
  for (const char c : third) {
    ASSERT_TRUE(client.Send(std::string(1, c)));
  }
  EXPECT_EQ(client.ReadLine(),
            twin.HandleLine("{\"op\":\"ping\",\"id\":3}"));

  // Blank lines and comments produce no response at all; the next real
  // request's response follows directly.
  ASSERT_TRUE(client.Send("\n  # annotation\n{\"op\":\"ping\",\"id\":4}\n"));
  EXPECT_EQ(client.ReadLine(),
            twin.HandleLine("{\"op\":\"ping\",\"id\":4}"));

  // Unparseable lines replay through the canonical parse-error rendering.
  ASSERT_TRUE(client.Send("{nope\n"));
  EXPECT_EQ(client.ReadLine(), twin.HandleLine("{nope"));

  server.Stop();
  serving.join();
}

TEST(TransportTest, PipelinedRequestsAnswerInOrderBitIdentical) {
  // A connection that fires its whole script in one write gets every
  // response, in request order, each byte-identical to the serial line
  // handler — including ordering effects (the create is visible to the
  // q2 behind it, the clean_step's version bump to the q2 behind that).
  Server server;
  Server twin;
  std::thread serving = Serve(server);
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  const std::vector<std::string> script = {
      CreateRequest("pipe", 30),
      "{\"op\":\"ping\",\"id\":1}",
      "{\"op\":\"q2\",\"session\":\"pipe\",\"val_indices\":[0],\"id\":2}",
      "{\"op\":\"stats\",\"session\":\"pipe\",\"id\":3}",
      "{\"op\":\"clean_step\",\"session\":\"pipe\",\"id\":4}",
      "{\"op\":\"q2\",\"session\":\"pipe\",\"val_indices\":[0],\"id\":5}",
  };
  std::string block;
  for (const std::string& line : script) {
    block += line;
    block.push_back('\n');
  }
  ASSERT_TRUE(client.Send(block));
  // The stats response embeds last_request_unix_ms, a wall-clock stamp
  // that can land one tick apart between the server and the twin; mask
  // it. Every other byte must match exactly.
  const auto mask_clock = [](std::string response) {
    const std::string field = "\"last_request_unix_ms\":";
    const size_t at = response.find(field);
    if (at == std::string::npos) return response;
    size_t end = at + field.size();
    while (end < response.size() &&
           std::isdigit(static_cast<unsigned char>(response[end]))) {
      response.erase(end, 1);
    }
    return response;
  };
  for (const std::string& line : script) {
    EXPECT_EQ(mask_clock(client.ReadLine()), mask_clock(twin.HandleLine(line)))
        << line;
  }

  server.Stop();
  serving.join();
}

TEST(TransportTest, ThousandIdleConnectionsStayResponsive) {
  // Idle connections cost the event loop one fd each, not one thread:
  // with ~1000 parked connections a fresh client's pings still answer,
  // and the parked connections themselves are still alive afterwards.
  // Each connection consumes two fds in this process (client + server
  // end), so raise RLIMIT_NOFILE first and scale to what we actually get
  // (CI soft limits are often 1024).
  rlimit rl{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &rl), 0);
  const rlim_t want = 2300;
  if (rl.rlim_cur < want) {
    rlimit raised = rl;
    raised.rlim_cur =
        rl.rlim_max == RLIM_INFINITY
            ? want
            : (rl.rlim_max < want ? rl.rlim_max : want);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  const int idle_target =
      static_cast<int>((rl.rlim_cur - 128) / 2) < 1000
          ? static_cast<int>((rl.rlim_cur - 128) / 2)
          : 1000;
  ASSERT_GT(idle_target, 100) << "fd limit too low to exercise anything";

  Server server;
  Server twin;
  std::thread serving = Serve(server);
  const int port = server.port();

  std::vector<std::unique_ptr<LineClient>> idle;
  idle.reserve(static_cast<size_t>(idle_target));
  for (int i = 0; i < idle_target; ++i) {
    auto conn = std::make_unique<LineClient>(port);
    ASSERT_TRUE(conn->connected()) << "connection " << i;
    idle.push_back(std::move(conn));
  }

  LineClient probe(port);
  ASSERT_TRUE(probe.connected());
  for (int i = 0; i < 3; ++i) {
    const std::string response = probe.Issue("{\"op\":\"ping\",\"id\":9}");
    EXPECT_EQ(response, twin.HandleLine("{\"op\":\"ping\",\"id\":9}"));
  }
  // The parked connections are live, not just half-open fds.
  ParseOk(idle.front()->Issue("{\"op\":\"ping\"}"));
  ParseOk(idle.back()->Issue("{\"op\":\"ping\"}"));

  const JsonValue stats = ParseOk(probe.Issue("{\"op\":\"stats\"}"));
  const JsonValue* conns = stats.Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_GE(conns->Find("active")->number_value(), idle_target);

  idle.clear();
  server.Stop();
  serving.join();
}

TEST(TransportTest, IdenticalQ2sCoalesceUnderLoad) {
  // Two identical q2 requests (ids aside) waiting behind a long write
  // collapse into one evaluation; each waiter still gets the canonical
  // response bytes under its own id.
  ServerOptions options;
  options.request_workers = 1;  // everything funnels through one worker
  Server server(options);
  Server twin;
  std::thread serving = Serve(server);
  const int port = server.port();

  LineClient creator(port);
  ASSERT_TRUE(creator.connected());
  ParseOk(creator.Issue(CreateRequest("co", 120)));
  ParseOk(twin.HandleLine(CreateRequest("co", 120)));

  // Park a long cleaning run on the single worker, give it a moment to
  // start, then land two identical q2 points while it holds the worker.
  LineClient writer(port);
  LineClient reader_a(port);
  LineClient reader_b(port);
  ASSERT_TRUE(writer.connected());
  ASSERT_TRUE(reader_a.connected());
  ASSERT_TRUE(reader_b.connected());
  const std::string clean = "{\"op\":\"clean_run\",\"session\":\"co\"}";
  ASSERT_TRUE(writer.Send(clean + "\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::string q2_a =
      "{\"op\":\"q2\",\"session\":\"co\",\"val_indices\":[1],\"id\":7}";
  const std::string q2_b =
      "{\"op\":\"q2\",\"session\":\"co\",\"val_indices\":[1],\"id\":8}";
  ASSERT_TRUE(reader_a.Send(q2_a + "\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(reader_b.Send(q2_b + "\n"));

  const std::string got_a = reader_a.ReadLine();
  const std::string got_b = reader_b.ReadLine();
  EXPECT_EQ(writer.ReadLine(), twin.HandleLine(clean));
  EXPECT_EQ(got_a, twin.HandleLine(q2_a));
  EXPECT_EQ(got_b, twin.HandleLine(q2_b));

  const JsonValue stats = ParseOk(creator.Issue("{\"op\":\"stats\"}"));
  const JsonValue* conns = stats.Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_GE(conns->Find("coalesced_q2")->number_value(), 1)
      << "identical q2s queued behind the busy worker should have merged";

  server.Stop();
  serving.join();
}

TEST(TransportTest, InflightLimitRejectsWithStructuredError) {
  // Admission control bounds in-flight REQUESTS, not connections: with
  // the single permit held by a long cleaning run, a new request answers
  // Unavailable immediately — carrying its own id — and succeeds on
  // retry once the permit frees up.
  ServerOptions options;
  options.request_workers = 1;
  options.max_inflight = 1;
  Server server(options);
  std::thread serving = Serve(server);
  const int port = server.port();

  LineClient creator(port);
  ASSERT_TRUE(creator.connected());
  ParseOk(creator.Issue(CreateRequest("adm", 120)));

  LineClient writer(port);
  LineClient reader(port);
  ASSERT_TRUE(writer.connected());
  ASSERT_TRUE(reader.connected());
  ASSERT_TRUE(writer.Send("{\"op\":\"clean_run\",\"session\":\"adm\"}\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const std::string q2 =
      "{\"op\":\"q2\",\"session\":\"adm\",\"val_indices\":[0],\"id\":5}";
  const std::string rejection = reader.Issue(q2);
  auto parsed = ParseJson(rejection);
  ASSERT_TRUE(parsed.ok()) << rejection;
  EXPECT_EQ(parsed.value().Find("id")->number_value(), 5) << rejection;
  EXPECT_FALSE(parsed.value().Find("ok")->bool_value()) << rejection;
  EXPECT_EQ(parsed.value().Find("error")->Find("code")->string_value(),
            "Unavailable")
      << rejection;

  // The run completes, the permit frees, the retry goes through.
  const std::string run_done = writer.ReadLine();
  ParseOk(run_done);
  JsonValue retry;
  for (int attempt = 0; attempt < 200; ++attempt) {
    const std::string response = reader.Issue(q2);
    auto again = ParseJson(response);
    ASSERT_TRUE(again.ok()) << response;
    if (again.value().Find("ok")->bool_value()) {
      retry = again.value();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(retry.is_object() && retry.Find("ok") != nullptr &&
              retry.Find("ok")->bool_value())
      << "q2 never succeeded after the permit freed";

  const JsonValue stats = ParseOk(creator.Issue("{\"op\":\"stats\"}"));
  EXPECT_GE(
      stats.Find("connections")->Find("rejected_requests")->number_value(),
      1);

  server.Stop();
  serving.join();
}

}  // namespace
}  // namespace cpclean
