// The append-only cleaning log behind save_session and the eviction
// sweep: a save after a full snapshot appends only the delta (the base
// file's bytes never change), an unchanged session's save touches no
// disk at all, rehydration replays base + log bit-identically, the log
// folds into a fresh base when it outgrows the compaction threshold
// (also under concurrent readers), torn tails recover, mid-log damage
// fails loudly, drop/startup-sweep remove logs, and the mmap storage
// mode serves bit-identical answers end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "serve/server.h"
#include "serve/session_store.h"
#include "tests/serve/serve_test_util.h"

namespace cpclean {
namespace {

using serve_test::ParseOk;

constexpr int kTrain = 30;
constexpr int kVal = 6;
constexpr int kK = 3;

std::string CreateRequest(const std::string& name, int seed) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"store\",\"train_rows\":%d,\"val_size\":%d,"
      "\"test_size\":6,\"seed\":%d,\"numeric\":4,\"categorical\":0,"
      "\"noise_sigma\":0.3,\"missing_rate\":0.25,\"k\":%d}",
      name.c_str(), kTrain, kVal, seed, kK);
}

/// A fresh empty data dir under the test tmpdir.
std::string FreshDataDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/cpclean_" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Server MakeServer(const std::string& data_dir, size_t max_sessions = 0) {
  ServerOptions options;
  options.data_dir = data_dir;
  options.max_sessions = max_sessions;
  return Server(options);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Serialized q2 responses (exact JSON bits) for every validation index.
std::vector<std::string> Q2Sweep(Server* server, const std::string& name) {
  std::vector<std::string> out;
  for (int v = 0; v < kVal; ++v) {
    const JsonValue result = ParseOk(server->HandleLine(
        StrFormat("{\"op\":\"q2\",\"session\":\"%s\",\"val_indices\":[%d]}",
                  name.c_str(), v)));
    out.push_back(result.Find("results")->array()[0].Dump());
  }
  return out;
}

void CleanSteps(Server* server, const std::string& name, int steps) {
  ParseOk(server->HandleLine(
      StrFormat("{\"op\":\"clean_step\",\"session\":\"%s\",\"steps\":%d}",
                name.c_str(), steps)));
}

void Save(Server* server, const std::string& name) {
  ParseOk(server->HandleLine(StrFormat(
      "{\"op\":\"save_session\",\"session\":\"%s\"}", name.c_str())));
}

/// Current value of a (process-global, monotone) store counter, via the
/// in-process metrics op.
double Counter(Server* server, const std::string& name) {
  const JsonValue metrics = ParseOk(server->HandleLine("{\"op\":\"metrics\"}"));
  const JsonValue* counter = metrics.Find("counters")->Find(name);
  return counter == nullptr ? 0.0 : counter->number_value();
}

TEST(StoreLogTest, DeltaSaveAppendsLogAndLeavesBaseUntouched) {
  const std::string dir = FreshDataDir("log_delta");
  constexpr int kSeed = 141;

  // The never-persisted twin is the ground truth for every later compare.
  Server twin = MakeServer("");
  ParseOk(twin.HandleLine(CreateRequest("s", kSeed)));
  CleanSteps(&twin, "s", 2);
  const std::vector<std::string> twin_mid = Q2Sweep(&twin, "s");

  const std::string base_path = dir + "/s.cpsession";
  const std::string log_path = dir + "/s.cplog";
  std::string base_bytes;
  {
    Server server = MakeServer(dir);
    ParseOk(server.HandleLine(CreateRequest("s", kSeed)));
    const double appended_before = Counter(&server, "store.log_appended_bytes");

    // First save: the full base snapshot; no log yet.
    Save(&server, "s");
    base_bytes = ReadFile(base_path);
    ASSERT_FALSE(base_bytes.empty());
    EXPECT_FALSE(std::filesystem::exists(log_path));

    // Two cleaning steps, then save again: the base file's bytes must not
    // change — only the log grows, by exactly the two fix records.
    CleanSteps(&server, "s", 2);
    Save(&server, "s");
    EXPECT_EQ(ReadFile(base_path), base_bytes);
    ASSERT_TRUE(std::filesystem::exists(log_path));
    const std::string log_bytes = ReadFile(log_path);
    EXPECT_NE(log_bytes.find("cpclean-log-v1"), std::string::npos);
    EXPECT_EQ(Counter(&server, "store.log_appended_bytes"),
              appended_before + log_bytes.size());

    // An unchanged session's save is a disk-less no-op: same base, same
    // log, nothing appended.
    Save(&server, "s");
    EXPECT_EQ(ReadFile(base_path), base_bytes);
    EXPECT_EQ(ReadFile(log_path), log_bytes);
  }

  // Restart: rehydration replays base + log and matches the twin bit for
  // bit, then keeps cleaning in the twin's exact order.
  Server second = MakeServer(dir);
  const double replayed_before = Counter(&second, "store.log_replayed_records");
  EXPECT_EQ(Q2Sweep(&second, "s"), twin_mid);
  EXPECT_EQ(Counter(&second, "store.log_replayed_records"),
            replayed_before + 2);
  const std::string twin_rest =
      ParseOk(twin.HandleLine("{\"op\":\"clean_run\",\"session\":\"s\"}"))
          .Find("cleaned")
          ->Dump();
  EXPECT_EQ(
      ParseOk(second.HandleLine("{\"op\":\"clean_run\",\"session\":\"s\"}"))
          .Find("cleaned")
          ->Dump(),
      twin_rest);
  EXPECT_EQ(Q2Sweep(&second, "s"), Q2Sweep(&twin, "s"));
}

TEST(StoreLogTest, LogCompactsIntoFreshBaseAtThreshold) {
  const std::string dir = FreshDataDir("log_compact");
  constexpr int kSeed = 142;
  ServerOptions options;
  options.data_dir = dir;
  // Small enough that a few one-fix deltas overflow it, large enough that
  // the first delta is a genuine log append.
  options.log_compact_bytes = 80;
  Server server(options);
  ParseOk(server.HandleLine(CreateRequest("s", kSeed)));
  Save(&server, "s");

  const std::string base_path = dir + "/s.cpsession";
  const std::string log_path = dir + "/s.cplog";
  const std::string base_v0 = ReadFile(base_path);
  const double compactions_before = Counter(&server, "store.compactions");
  bool log_seen = false;
  bool compacted = false;
  int steps = 0;
  for (int i = 0; i < 6 && !compacted; ++i) {
    CleanSteps(&server, "s", 1);
    ++steps;
    Save(&server, "s");
    if (std::filesystem::exists(log_path)) {
      log_seen = true;
      EXPECT_EQ(ReadFile(base_path), base_v0);
    } else if (log_seen) {
      // The log existed and is now gone: this save folded it into a fresh
      // base snapshot.
      compacted = true;
      EXPECT_NE(ReadFile(base_path), base_v0);
    }
  }
  EXPECT_TRUE(log_seen);
  ASSERT_TRUE(compacted);
  EXPECT_GE(Counter(&server, "store.compactions"), compactions_before + 1);

  // The compacted state rehydrates bit-identically to a twin that cleaned
  // the same number of steps without ever persisting.
  Server twin = MakeServer("");
  ParseOk(twin.HandleLine(CreateRequest("s", kSeed)));
  CleanSteps(&twin, "s", steps);
  Server reloaded = MakeServer(dir);
  EXPECT_EQ(Q2Sweep(&reloaded, "s"), Q2Sweep(&twin, "s"));
}

TEST(StoreLogTest, EvictionSweepAppendsDeltaOnly) {
  const std::string dir = FreshDataDir("log_evict");
  constexpr int kSeed = 143;
  Server twin = MakeServer("");
  ParseOk(twin.HandleLine(CreateRequest("a", kSeed)));
  CleanSteps(&twin, "a", 1);
  const std::vector<std::string> twin_mid = Q2Sweep(&twin, "a");

  Server server = MakeServer(dir, /*max_sessions=*/1);
  ParseOk(server.HandleLine(CreateRequest("a", kSeed)));
  Save(&server, "a");  // establishes the durable baseline
  const std::string base_bytes = ReadFile(dir + "/a.cpsession");
  CleanSteps(&server, "a", 1);

  // Creating the decoy evicts "a" (the LRU). With a durable baseline in
  // place the sweep's save is an O(delta) log append, not a full rewrite.
  ParseOk(server.HandleLine(CreateRequest("decoy", 991)));
  EXPECT_EQ(ReadFile(dir + "/a.cpsession"), base_bytes);
  EXPECT_TRUE(std::filesystem::exists(dir + "/a.cplog"));

  // Touching "a" rehydrates it (replaying the one-fix log) bit-identically.
  EXPECT_EQ(Q2Sweep(&server, "a"), twin_mid);
}

TEST(StoreLogTest, TornTailIsDroppedOnRehydration) {
  const std::string dir = FreshDataDir("log_torn");
  constexpr int kSeed = 144;
  Server twin = MakeServer("");
  ParseOk(twin.HandleLine(CreateRequest("s", kSeed)));
  CleanSteps(&twin, "s", 2);

  {
    Server server = MakeServer(dir);
    ParseOk(server.HandleLine(CreateRequest("s", kSeed)));
    Save(&server, "s");
    CleanSteps(&server, "s", 2);
    Save(&server, "s");
  }
  // A crash mid-append leaves a torn final line. It was never acked, so
  // rehydration must drop it and serve the state up to the last complete
  // record.
  const std::string log_path = dir + "/s.cplog";
  std::ofstream torn(log_path, std::ios::binary | std::ios::app);
  torn << "fix 99 1";  // no newline, no checksum
  torn.close();

  Server reloaded = MakeServer(dir);
  EXPECT_EQ(Q2Sweep(&reloaded, "s"), Q2Sweep(&twin, "s"));
  // And the next save truncated the tail before appending, leaving a log
  // that parses clean.
  CleanSteps(&reloaded, "s", 1);
  Save(&reloaded, "s");
  EXPECT_EQ(ReadFile(log_path).find("fix 99 1"), std::string::npos);
  CleanSteps(&twin, "s", 1);
  Server again = MakeServer(dir);
  EXPECT_EQ(Q2Sweep(&again, "s"), Q2Sweep(&twin, "s"));
}

TEST(StoreLogTest, MidLogCorruptionFailsRehydrationLoudly) {
  const std::string dir = FreshDataDir("log_corrupt");
  {
    Server server = MakeServer(dir);
    ParseOk(server.HandleLine(CreateRequest("s", 145)));
    Save(&server, "s");
    CleanSteps(&server, "s", 2);
    Save(&server, "s");
  }
  // Flip one digit inside the FIRST of the two checksummed records — not
  // the tail, so this is damage, not a torn append.
  const std::string log_path = dir + "/s.cplog";
  std::string log = ReadFile(log_path);
  const size_t pos = log.find("fix ");
  ASSERT_NE(pos, std::string::npos);
  log[pos + 4] = log[pos + 4] == '1' ? '2' : '1';
  WriteFile(log_path, log);

  Server reloaded = MakeServer(dir);
  const std::string response = reloaded.HandleLine(
      "{\"op\":\"q2\",\"session\":\"s\",\"val_indices\":[0]}");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("IO error"), std::string::npos) << response;
}

TEST(StoreLogTest, DropRemovesLogAndStartupSweepsOrphans) {
  const std::string dir = FreshDataDir("log_drop");
  Server server = MakeServer(dir);
  ParseOk(server.HandleLine(CreateRequest("s", 146)));
  Save(&server, "s");
  CleanSteps(&server, "s", 1);
  Save(&server, "s");
  ASSERT_TRUE(std::filesystem::exists(dir + "/s.cplog"));
  ParseOk(server.HandleLine("{\"op\":\"drop_session\",\"session\":\"s\"}"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/s.cpsession"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/s.cplog"));

  // A log with no base snapshot (the delete-crashed-between-unlinks case)
  // is reclaimed by the next startup sweep, and the name reads as absent.
  WriteFile(dir + "/ghost.cplog", "cpclean-log-v1\n");
  Server swept = MakeServer(dir);
  EXPECT_FALSE(std::filesystem::exists(dir + "/ghost.cplog"));
  EXPECT_NE(swept.HandleLine(
                    "{\"op\":\"load_session\",\"session\":\"ghost\"}")
                .find("\"Not found\""),
            std::string::npos);
}

TEST(StoreLogTest, MmapStorageModeIsBitIdenticalEndToEnd) {
  const std::string dir = FreshDataDir("log_mmap");
  constexpr int kSeed = 147;
  Server ram = MakeServer("");
  ParseOk(ram.HandleLine(CreateRequest("s", kSeed)));

  ServerOptions options;
  options.data_dir = dir;
  options.storage_mode = "mmap";
  Server mmap_server(options);
  ParseOk(mmap_server.HandleLine(CreateRequest("s", kSeed)));
  EXPECT_EQ(Q2Sweep(&mmap_server, "s"), Q2Sweep(&ram, "s"));

  // Clean to completion: identical order, identical final answers.
  const std::string ram_cleaned =
      ParseOk(ram.HandleLine("{\"op\":\"clean_run\",\"session\":\"s\"}"))
          .Find("cleaned")
          ->Dump();
  EXPECT_EQ(ParseOk(mmap_server.HandleLine(
                        "{\"op\":\"clean_run\",\"session\":\"s\"}"))
                .Find("cleaned")
                ->Dump(),
            ram_cleaned);
  EXPECT_EQ(Q2Sweep(&mmap_server, "s"), Q2Sweep(&ram, "s"));

  // Save → restart (still mmap mode): the rehydrated session matches too.
  Save(&mmap_server, "s");
  Server reloaded(options);
  EXPECT_EQ(Q2Sweep(&reloaded, "s"), Q2Sweep(&ram, "s"));
}

TEST(StoreLogTest, CompactionUnderConcurrentReadsServesEveryQuery) {
  const std::string dir = FreshDataDir("log_concurrent");
  constexpr int kSeed = 148;
  ServerOptions options;
  options.data_dir = dir;
  options.log_compact_bytes = 80;  // compacts every few saves
  Server server(options);
  ParseOk(server.HandleLine(CreateRequest("s", kSeed)));
  Save(&server, "s");

  // Readers hammer q2 while the writer interleaves clean_step + save —
  // driving the log through append and compaction under load. Every read
  // must succeed; failures are tallied and asserted after the join.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<int> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&server, &stop, &failures, &reads, r] {
      const std::string req = StrFormat(
          "{\"op\":\"q2\",\"session\":\"s\",\"val_indices\":[%d]}", r % kVal);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string response = server.HandleLine(req);
        if (response.find("\"ok\":true") == std::string::npos) {
          failures.fetch_add(1);
        }
        reads.fetch_add(1);
      }
    });
  }
  int steps = 0;
  for (int i = 0; i < 6; ++i) {
    CleanSteps(&server, "s", 1);
    ++steps;
    Save(&server, "s");
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0);

  // The persisted end state is the twin's.
  Server twin = MakeServer("");
  ParseOk(twin.HandleLine(CreateRequest("s", kSeed)));
  CleanSteps(&twin, "s", steps);
  Server reloaded = MakeServer(dir);
  EXPECT_EQ(Q2Sweep(&reloaded, "s"), Q2Sweep(&twin, "s"));
}

}  // namespace
}  // namespace cpclean
