// Shared plumbing for the serve-layer tests: a blocking line-protocol TCP
// client and small JSON response helpers.

#ifndef CPCLEAN_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define CPCLEAN_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "serve/json.h"

namespace cpclean {
namespace serve_test {

/// A synchronous line-protocol client over one loopback TCP connection.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  /// Reads one response line without sending anything first (e.g. the
  /// admission-control rejection pushed by the server on accept). Returns
  /// "" on EOF.
  std::string ReadLine() {
    size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const std::string response = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return response;
  }

  /// Sends raw bytes without waiting for a response (pipelining and
  /// partial-line framing tests). Returns false on a transport failure.
  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t w = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) return false;
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  /// Sends one request line, returns the matching response line ("" on a
  /// transport failure).
  std::string Issue(const std::string& line) {
    std::string request = line;
    request.push_back('\n');
    size_t sent = 0;
    while (sent < request.size()) {
      // MSG_NOSIGNAL: a racing server-side close must surface as an empty
      // response, not a SIGPIPE.
      const ssize_t w = ::send(fd_, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) return "";
      sent += static_cast<size_t>(w);
    }
    return ReadLine();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// Parses a response line, asserts ok:true, and returns its result object
/// (empty on any malformed/error response, so a server regression shows a
/// readable test failure instead of a null-deref crash).
inline JsonValue ParseOk(const std::string& response) {
  auto parsed = ParseJson(response);
  EXPECT_TRUE(parsed.ok()) << response;
  if (!parsed.ok()) return JsonValue();
  const JsonValue* ok = parsed.value().Find("ok");
  EXPECT_NE(ok, nullptr) << response;
  EXPECT_TRUE(ok != nullptr && ok->bool_value()) << response;
  const JsonValue* result = parsed.value().Find("result");
  if (result == nullptr) {
    ADD_FAILURE() << "response carries no result: " << response;
    return JsonValue();
  }
  return *result;
}

inline std::vector<double> NumberArray(const JsonValue& v) {
  std::vector<double> out;
  for (const JsonValue& x : v.array()) out.push_back(x.number_value());
  return out;
}

}  // namespace serve_test
}  // namespace cpclean

#endif  // CPCLEAN_TESTS_SERVE_SERVE_TEST_UTIL_H_
