// Protocol round-trips against the request router: session lifecycle,
// batched queries, error paths, and — the subsystem's acceptance bar —
// bit-identical certify / Q2 answers between the served protocol (JSON all
// the way through) and direct library calls, with cache hits on repeats
// and precise invalidation after cleaning steps.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cleaning/certify.h"
#include "cleaning/cp_clean.h"
#include "common/string_util.h"
#include "core/fast_q2.h"
#include "eval/experiment.h"
#include "knn/kernel.h"
#include "serve/server.h"

namespace cpclean {
namespace {

constexpr int kTrain = 48;
constexpr int kVal = 12;
constexpr int kTest = 12;
constexpr uint64_t kSeed = 29;
constexpr int kK = 3;

/// The create_session request whose server-side task construction the
/// reference below replicates exactly.
std::string CreateRequest(const std::string& name) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"proto\",\"train_rows\":%d,\"val_size\":%d,"
      "\"test_size\":%d,\"seed\":%d,\"numeric\":4,\"categorical\":0,"
      "\"noise_sigma\":0.3,\"missing_rate\":0.2,\"k\":%d}",
      name.c_str(), kTrain, kVal, kTest, static_cast<int>(kSeed), kK);
}

/// Direct-library twin of CreateRequest's dataset.
PreparedExperiment MakeReference(const SimilarityKernel& kernel) {
  ExperimentConfig config;
  config.dataset.name = "proto";
  config.dataset.synthetic.name = "proto";
  config.dataset.synthetic.num_rows = kTrain + kVal + kTest;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = kSeed;
  config.dataset.missing_rate = 0.2;
  config.dataset.val_size = kVal;
  config.dataset.test_size = kTest;
  config.k = kK;
  config.seed = kSeed;
  return PrepareExperiment(config, kernel).value();
}

JsonValue Respond(Server* server, const std::string& line) {
  const std::string response = server->HandleLine(line);
  auto parsed = ParseJson(response);
  EXPECT_TRUE(parsed.ok()) << response;
  return parsed.value();
}

JsonValue RespondOk(Server* server, const std::string& line) {
  const JsonValue response = Respond(server, line);
  EXPECT_NE(response.Find("ok"), nullptr) << response.Dump();
  EXPECT_TRUE(response.Find("ok")->bool_value()) << response.Dump();
  return *response.Find("result");
}

std::string RespondErrorCode(Server* server, const std::string& line) {
  const JsonValue response = Respond(server, line);
  EXPECT_FALSE(response.Find("ok") == nullptr ||
               response.Find("ok")->bool_value())
      << response.Dump();
  const JsonValue* error = response.Find("error");
  if (error == nullptr || error->Find("code") == nullptr) return "";
  return error->Find("code")->string_value();
}

std::vector<double> NumberArray(const JsonValue& v) {
  std::vector<double> out;
  for (const JsonValue& x : v.array()) out.push_back(x.number_value());
  return out;
}

TEST(ProtocolTest, SessionLifecycle) {
  Server server;
  const JsonValue created = RespondOk(&server, CreateRequest("s1"));
  EXPECT_EQ(created.Find("train")->number_value(), kTrain);
  EXPECT_EQ(created.Find("val")->number_value(), kVal);
  EXPECT_GT(created.Find("dirty")->number_value(), 0);

  const JsonValue listed = RespondOk(&server, "{\"op\":\"list_sessions\"}");
  ASSERT_EQ(listed.Find("sessions")->array().size(), 1u);
  EXPECT_EQ(listed.Find("sessions")->array()[0].string_value(), "s1");

  // Duplicate name is a structured error, not a replacement.
  EXPECT_EQ(RespondErrorCode(&server, CreateRequest("s1")),
            "Already exists");

  RespondOk(&server, "{\"op\":\"drop_session\",\"session\":\"s1\"}");
  const JsonValue empty = RespondOk(&server, "{\"op\":\"list_sessions\"}");
  EXPECT_TRUE(empty.Find("sessions")->array().empty());
}

TEST(ProtocolTest, ErrorPaths) {
  Server server;
  // Malformed JSON and non-object requests.
  EXPECT_EQ(RespondErrorCode(&server, "not json"), "Parse error");
  EXPECT_EQ(RespondErrorCode(&server, "[1,2]"), "Invalid argument");
  // Blank and comment lines produce no response at all.
  EXPECT_EQ(server.HandleLine(""), "");
  EXPECT_EQ(server.HandleLine("  # scripted-client comment"), "");
  // Unknown op / missing op.
  EXPECT_EQ(RespondErrorCode(&server, "{\"op\":\"frobnicate\"}"),
            "Invalid argument");
  EXPECT_EQ(RespondErrorCode(&server, "{\"id\":9}"), "Invalid argument");
  // Ops against a session that does not exist.
  EXPECT_EQ(RespondErrorCode(
                &server,
                "{\"op\":\"q2\",\"session\":\"ghost\",\"val_indices\":[0]}"),
            "Not found");
  // Malformed CSV → structured error (the Status-propagation satellite).
  EXPECT_EQ(
      RespondErrorCode(&server,
                       "{\"op\":\"create_session\",\"session\":\"c\","
                       "\"source\":\"csv\",\"csv_text\":\"a,b\\n1\",\"label\":"
                       "\"b\"}"),
      "Parse error");
  // CSV with a label column that is not in the schema.
  EXPECT_EQ(
      RespondErrorCode(&server,
                       "{\"op\":\"create_session\",\"session\":\"c\","
                       "\"source\":\"csv\",\"csv_text\":\"a,b\\n1,2\","
                       "\"label\":\"zzz\"}"),
      "Not found");
  // Bad kernel, bad k, bad source.
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"create_session\",\"session\":\"x\","
                             "\"kernel\":\"manhattan\"}"),
            "Invalid argument");
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"create_session\",\"session\":\"x\","
                             "\"source\":\"warehouse\"}"),
            "Invalid argument");

  RespondOk(&server, CreateRequest("s"));
  // k beyond the engine cap flows back as InvalidArgument from
  // CleaningSession::Create, not a CP_CHECK abort.
  EXPECT_EQ(
      RespondErrorCode(
          &server,
          StrFormat("{\"op\":\"create_session\",\"session\":\"big_k\","
                    "\"source\":\"synthetic\",\"train_rows\":40,"
                    "\"val_size\":8,\"test_size\":8,\"k\":%d}",
                    FastQ2::kMaxK + 1)),
      "Invalid argument");
  // Point with the wrong dimension.
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"q2\",\"session\":\"s\",\"points\":"
                             "[[1.0,2.0]]}"),
            "Invalid argument");
  // val_index out of range.
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"q2\",\"session\":\"s\","
                             "\"val_indices\":[999]}"),
            "Out of range");
  // Both or neither point selector.
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"q2\",\"session\":\"s\"}"),
            "Invalid argument");
  // Wrong parameter type.
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"clean_step\",\"session\":\"s\","
                             "\"steps\":\"two\"}"),
            "Invalid argument");
  // Integer parameters must be exact in-range integers — no silent
  // truncation (4294967299 would alias to k=3 via int32 wraparound), no
  // fractional values, no float→int UB on huge magnitudes.
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"create_session\",\"session\":\"w\","
                             "\"source\":\"synthetic\",\"k\":4294967299}"),
            "Out of range");
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"clean_step\",\"session\":\"s\","
                             "\"steps\":1.5}"),
            "Invalid argument");
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"create_session\",\"session\":\"w\","
                             "\"source\":\"synthetic\",\"seed\":1e300}"),
            "Invalid argument");
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"q2\",\"session\":\"s\","
                             "\"val_indices\":[1e300]}"),
            "Invalid argument");
  EXPECT_EQ(RespondErrorCode(&server,
                             "{\"op\":\"q2\",\"session\":\"s\","
                             "\"val_indices\":[-1]}"),
            "Invalid argument");
}

TEST(ProtocolTest, ServedQueriesBitMatchDirectLibraryCalls) {
  NegativeEuclideanKernel kernel;
  const PreparedExperiment reference = MakeReference(kernel);

  Server server;
  RespondOk(&server, CreateRequest("s"));

  // Q2 for every validation point must reproduce the direct FastQ2
  // fractions bit-for-bit after the JSON round-trip.
  FastQ2 direct(&reference.task.incomplete, kK);
  for (int v = 0; v < kVal; ++v) {
    const JsonValue result = RespondOk(
        &server, StrFormat("{\"op\":\"q2\",\"session\":\"s\","
                           "\"val_indices\":[%d]}",
                           v));
    const std::vector<double> got =
        NumberArray(*result.Find("results")->array()[0].Find("probs"));
    direct.SetTestPoint(reference.task.val_x[static_cast<size_t>(v)],
                        kernel);
    const std::vector<double> want = direct.Fractions();
    ASSERT_EQ(got.size(), want.size());
    for (size_t y = 0; y < want.size(); ++y) {
      EXPECT_EQ(got[y], want[y]) << "val point " << v << " label " << y;
    }
  }

  // Certify must clean the same tuples in the same order and certify the
  // same label as the direct call.
  CertifyOptions certify_options;
  certify_options.k = kK;
  for (int v = 0; v < 4; ++v) {
    const JsonValue result = RespondOk(
        &server, StrFormat("{\"op\":\"certify\",\"session\":\"s\","
                           "\"val_indices\":[%d]}",
                           v));
    const JsonValue& one = result.Find("results")->array()[0];
    const auto want = CertifyTestPoint(
        reference.task, reference.task.val_x[static_cast<size_t>(v)], kernel,
        certify_options);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(one.Find("certified")->bool_value(), want.value().certified);
    EXPECT_EQ(static_cast<int>(one.Find("label")->number_value()),
              want.value().certain_label);
    const std::vector<double> cleaned = NumberArray(*one.Find("cleaned"));
    ASSERT_EQ(cleaned.size(), want.value().cleaned.size());
    for (size_t i = 0; i < cleaned.size(); ++i) {
      EXPECT_EQ(static_cast<int>(cleaned[i]), want.value().cleaned[i]);
    }
  }
}

TEST(ProtocolTest, CleanStepsMatchDirectSessionAndInvalidateCache) {
  NegativeEuclideanKernel kernel;
  const PreparedExperiment reference = MakeReference(kernel);
  CpCleanOptions clean_options;
  clean_options.k = kK;
  clean_options.track_test_accuracy = false;
  CleaningSession direct(&reference.task, &kernel, clean_options);

  Server server;
  RespondOk(&server, CreateRequest("s"));

  // Interleave: q2 on a fixed point, one cleaning step, q2 again — across
  // several rounds. Every answer must match the direct session's state,
  // and the second q2 of each round must be a cache miss (version moved)
  // while an immediate repeat hits.
  FastQ2 direct_q2(&direct.working(), kK);
  uint64_t expected_hits = 0;
  uint64_t expected_invalidations = 0;
  for (int round = 0; round < 3; ++round) {
    // Round 0's first q2 is a plain miss; later rounds' first q2 finds the
    // entry cached before the cleaning step, sees the bumped version, and
    // drops it — the invalidation the cache must count.
    if (round > 0) ++expected_invalidations;
    for (const int repeat : {0, 1}) {
      const JsonValue result = RespondOk(
          &server,
          "{\"op\":\"q2\",\"session\":\"s\",\"val_indices\":[0]}");
      if (repeat == 1) ++expected_hits;
      direct_q2.SetTestPoint(reference.task.val_x[0], kernel);
      const std::vector<double> want = direct_q2.Fractions();
      const std::vector<double> got =
          NumberArray(*result.Find("results")->array()[0].Find("probs"));
      ASSERT_EQ(got.size(), want.size());
      for (size_t y = 0; y < want.size(); ++y) {
        EXPECT_EQ(got[y], want[y]) << "round " << round;
      }
    }

    const JsonValue step = RespondOk(
        &server, "{\"op\":\"clean_step\",\"session\":\"s\",\"steps\":1}");
    const int direct_cleaned = direct.StepGreedy();
    ASSERT_EQ(step.Find("cleaned")->array().size(), 1u) << "round " << round;
    EXPECT_EQ(
        static_cast<int>(step.Find("cleaned")->array()[0].number_value()),
        direct_cleaned);
    EXPECT_EQ(step.Find("frac_val_certain")->number_value(),
              direct.FracValCertain());
  }

  const JsonValue stats = RespondOk(
      &server, "{\"op\":\"stats\",\"session\":\"s\"}");
  const JsonValue* cache = stats.Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->Find("hits")->number_value(),
            static_cast<double>(expected_hits));
  EXPECT_EQ(cache->Find("invalidations")->number_value(),
            static_cast<double>(expected_invalidations));
  EXPECT_GT(expected_hits, 0u);
}

TEST(ProtocolTest, CleanRunReachesAllCertainLikeDirectLoop) {
  NegativeEuclideanKernel kernel;
  const PreparedExperiment reference = MakeReference(kernel);
  CpCleanOptions clean_options;
  clean_options.k = kK;
  clean_options.track_test_accuracy = false;
  CleaningSession direct(&reference.task, &kernel, clean_options);
  std::vector<int> want_order;
  while (true) {
    const int cleaned = direct.StepGreedy();
    if (cleaned < 0) break;
    want_order.push_back(cleaned);
  }

  Server server;
  RespondOk(&server, CreateRequest("s"));
  const JsonValue run = RespondOk(
      &server, "{\"op\":\"clean_run\",\"session\":\"s\",\"budget\":-1}");
  const std::vector<double> got_order =
      NumberArray(*run.Find("cleaned"));
  ASSERT_EQ(got_order.size(), want_order.size());
  for (size_t i = 0; i < want_order.size(); ++i) {
    EXPECT_EQ(static_cast<int>(got_order[i]), want_order[i]);
  }
  EXPECT_EQ(run.Find("frac_val_certain")->number_value(),
            direct.FracValCertain());
}

TEST(ProtocolTest, PredictConsistentWithCertify) {
  Server server;
  RespondOk(&server, CreateRequest("s"));
  // A certified point must predict the same certain label.
  const JsonValue certify = RespondOk(
      &server,
      "{\"op\":\"certify\",\"session\":\"s\",\"val_indices\":[0,1,2]}");
  const JsonValue predict = RespondOk(
      &server,
      "{\"op\":\"predict\",\"session\":\"s\",\"val_indices\":[0,1,2]}");
  for (int v = 0; v < 3; ++v) {
    const JsonValue& c = certify.Find("results")->array()[v];
    const JsonValue& p = predict.Find("results")->array()[v];
    if (p.Find("certain")->bool_value()) {
      // Already certain with no cleaning: certify agrees and cleans nothing.
      EXPECT_TRUE(c.Find("certified")->bool_value());
      EXPECT_TRUE(c.Find("cleaned")->array().empty());
      EXPECT_EQ(c.Find("label")->number_value(),
                p.Find("label")->number_value());
    } else {
      EXPECT_EQ(p.Find("label")->number_value(), -1);
    }
  }
}

}  // namespace
}  // namespace cpclean
