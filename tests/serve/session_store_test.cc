// The session lifecycle: save → evict → rehydrate. A session persisted
// mid-cleaning and rebuilt (same process or a fresh Server over the same
// data dir) must serve bit-identical q2/certify/predict answers and
// continue cleaning in exactly the order the uninterrupted session would
// have, including the zero-steps-cleaned and nothing-dirty edge cases.
// Also covers the LRU eviction sweep and the explicit save/load/drop ops.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "serve/server.h"
#include "serve/session_store.h"
#include "tests/serve/serve_test_util.h"

namespace cpclean {
namespace {

using serve_test::NumberArray;
using serve_test::ParseOk;

constexpr int kTrain = 30;
constexpr int kVal = 6;
constexpr int kK = 3;

std::string CreateRequest(const std::string& name, int seed,
                          double missing_rate = 0.25) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"store\",\"train_rows\":%d,\"val_size\":%d,"
      "\"test_size\":6,\"seed\":%d,\"numeric\":4,\"categorical\":0,"
      "\"noise_sigma\":0.3,\"missing_rate\":%g,\"k\":%d}",
      name.c_str(), kTrain, kVal, seed, missing_rate, kK);
}

/// A fresh empty data dir under the test tmpdir.
std::string FreshDataDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/cpclean_" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Server MakeServer(const std::string& data_dir, size_t max_sessions = 0) {
  ServerOptions options;
  options.data_dir = data_dir;
  options.max_sessions = max_sessions;
  return Server(options);
}

/// Serialized q2 responses (probs + entropy + version, exact JSON bits)
/// for every validation index.
std::vector<std::string> Q2Sweep(Server* server, const std::string& name) {
  std::vector<std::string> out;
  for (int v = 0; v < kVal; ++v) {
    const JsonValue result = ParseOk(server->HandleLine(
        StrFormat("{\"op\":\"q2\",\"session\":\"%s\",\"val_indices\":[%d]}",
                  name.c_str(), v)));
    out.push_back(result.Find("results")->array()[0].Dump());
  }
  return out;
}

std::vector<int> CleanedIds(const JsonValue& result) {
  std::vector<int> out;
  for (const JsonValue& x : result.Find("cleaned")->array()) {
    out.push_back(static_cast<int>(x.number_value()));
  }
  return out;
}

TEST(SessionStoreTest, SaveRestartRehydrateBitIdentical) {
  const std::string dir = FreshDataDir("roundtrip");
  constexpr int kSeed = 41;

  // The never-persisted twin: same session, cleaned 2 steps, then run to
  // the end — the ground truth for both answers and cleaning order.
  Server twin = MakeServer("");
  ParseOk(twin.HandleLine(CreateRequest("s", kSeed)));
  ParseOk(twin.HandleLine("{\"op\":\"clean_step\",\"session\":\"s\","
                          "\"steps\":2}"));
  const std::vector<std::string> twin_mid = Q2Sweep(&twin, "s");
  const std::string twin_certify = ParseOk(
      twin.HandleLine("{\"op\":\"certify\",\"session\":\"s\","
                      "\"val_indices\":[0]}"))
                                       .Dump();
  const std::vector<int> twin_rest = CleanedIds(ParseOk(
      twin.HandleLine("{\"op\":\"clean_run\",\"session\":\"s\"}")));
  const std::vector<std::string> twin_final = Q2Sweep(&twin, "s");

  std::string snapshot_path;
  {
    // First server: clean 2 steps mid-way, save, and go away (scope end =
    // process restart as far as the data dir is concerned).
    Server first = MakeServer(dir);
    ParseOk(first.HandleLine(CreateRequest("s", kSeed)));
    ParseOk(first.HandleLine("{\"op\":\"clean_step\",\"session\":\"s\","
                             "\"steps\":2}"));
    const std::vector<std::string> first_mid = Q2Sweep(&first, "s");
    EXPECT_EQ(first_mid, twin_mid);
    const JsonValue saved = ParseOk(
        first.HandleLine("{\"op\":\"save_session\",\"session\":\"s\"}"));
    EXPECT_EQ(saved.Find("saved")->string_value(), "s");
    snapshot_path = saved.Find("path")->string_value();
    EXPECT_TRUE(std::filesystem::exists(snapshot_path));
  }

  // Second server over the same data dir: the very first request names
  // the session — lazy rehydration, no explicit load_session.
  Server second = MakeServer(dir);
  EXPECT_EQ(second.registry().size(), 0u);
  EXPECT_EQ(Q2Sweep(&second, "s"), twin_mid);
  EXPECT_EQ(ParseOk(second.HandleLine(
                        "{\"op\":\"certify\",\"session\":\"s\","
                        "\"val_indices\":[0]}"))
                .Dump(),
            twin_certify);
  const JsonValue stats = ParseOk(
      second.HandleLine("{\"op\":\"stats\",\"session\":\"s\"}"));
  EXPECT_EQ(static_cast<int>(stats.Find("num_cleaned")->number_value()), 2);
  // The resolved options rode along through the snapshot.
  const JsonValue* options = stats.Find("options");
  ASSERT_NE(options, nullptr);
  EXPECT_EQ(static_cast<int>(options->Find("k")->number_value()), kK);
  EXPECT_EQ(options->Find("kernel")->string_value(), "neg_euclidean");
  // The rest of the cleaning replays in exactly the twin's order.
  EXPECT_EQ(CleanedIds(ParseOk(second.HandleLine(
                "{\"op\":\"clean_run\",\"session\":\"s\"}"))),
            twin_rest);
  EXPECT_EQ(Q2Sweep(&second, "s"), twin_final);
}

TEST(SessionStoreTest, ZeroStepsAndNothingDirtyRoundTrip) {
  const std::string dir = FreshDataDir("edges");
  // (a) Saved before any cleaning: the snapshot carries an empty order.
  {
    Server server = MakeServer(dir);
    ParseOk(server.HandleLine(CreateRequest("virgin", 43)));
    const std::vector<std::string> before = Q2Sweep(&server, "virgin");
    ParseOk(server.HandleLine(
        "{\"op\":\"save_session\",\"session\":\"virgin\"}"));
    Server reloaded = MakeServer(dir);
    EXPECT_EQ(Q2Sweep(&reloaded, "virgin"), before);
    const JsonValue stats = ParseOk(reloaded.HandleLine(
        "{\"op\":\"stats\",\"session\":\"virgin\"}"));
    EXPECT_EQ(static_cast<int>(stats.Find("num_cleaned")->number_value()),
              0);
  }
  // (b) A task with no dirty rows at all (missing_rate 0): every candidate
  // set is a singleton; cleaning is a no-op before and after rehydration.
  {
    Server server = MakeServer(dir);
    ParseOk(server.HandleLine(
        CreateRequest("pristine", 44, /*missing_rate=*/0.0)));
    const std::vector<std::string> before = Q2Sweep(&server, "pristine");
    EXPECT_TRUE(CleanedIds(ParseOk(server.HandleLine(
                               "{\"op\":\"clean_step\",\"session\":"
                               "\"pristine\"}")))
                    .empty());
    ParseOk(server.HandleLine(
        "{\"op\":\"save_session\",\"session\":\"pristine\"}"));
    Server reloaded = MakeServer(dir);
    EXPECT_TRUE(CleanedIds(ParseOk(reloaded.HandleLine(
                               "{\"op\":\"clean_step\",\"session\":"
                               "\"pristine\"}")))
                    .empty());
    EXPECT_EQ(Q2Sweep(&reloaded, "pristine"), before);
  }
}

TEST(SessionStoreTest, EvictionIsLruAndRehydrationIsLazy) {
  const std::string dir = FreshDataDir("eviction");
  Server server = MakeServer(dir, /*max_sessions=*/2);
  ParseOk(server.HandleLine(CreateRequest("e1", 51)));
  ParseOk(server.HandleLine(CreateRequest("e2", 52)));
  const std::vector<std::string> e2_before = Q2Sweep(&server, "e2");
  Q2Sweep(&server, "e1");  // e1 is now more recently used than e2

  // Creating e3 pushes past max_sessions: e2 (LRU) is saved + dropped.
  ParseOk(server.HandleLine(CreateRequest("e3", 53)));
  EXPECT_EQ(server.registry().size(), 2u);
  const JsonValue listed = ParseOk(
      server.HandleLine("{\"op\":\"list_sessions\"}"));
  ASSERT_EQ(listed.Find("sessions")->array().size(), 2u);
  EXPECT_EQ(listed.Find("sessions")->array()[0].string_value(), "e1");
  EXPECT_EQ(listed.Find("sessions")->array()[1].string_value(), "e3");
  // The evicted session still owns its name and shows up as such.
  ASSERT_NE(listed.Find("evicted"), nullptr);
  ASSERT_EQ(listed.Find("evicted")->array().size(), 1u);
  EXPECT_EQ(listed.Find("evicted")->array()[0].string_value(), "e2");
  const JsonValue global = ParseOk(server.HandleLine("{\"op\":\"stats\"}"));
  ASSERT_NE(global.Find("saved"), nullptr);
  ASSERT_EQ(global.Find("saved")->array().size(), 1u);
  EXPECT_EQ(global.Find("saved")->array()[0].string_value(), "e2");

  // Monitoring an evicted session answers a stub — it must neither
  // rehydrate nor stamp the session recently-used.
  const JsonValue evicted_stats = ParseOk(
      server.HandleLine("{\"op\":\"stats\",\"session\":\"e2\"}"));
  EXPECT_EQ(evicted_stats.Find("state")->string_value(), "evicted");
  EXPECT_EQ(server.registry().size(), 2u);

  // Touching e2 rehydrates it bit-identically and (capacity again) evicts
  // e1, now the least recently used.
  EXPECT_EQ(Q2Sweep(&server, "e2"), e2_before);
  const JsonValue relisted = ParseOk(
      server.HandleLine("{\"op\":\"list_sessions\"}"));
  ASSERT_EQ(relisted.Find("sessions")->array().size(), 2u);
  EXPECT_EQ(relisted.Find("sessions")->array()[0].string_value(), "e2");
  EXPECT_EQ(relisted.Find("sessions")->array()[1].string_value(), "e3");
}

TEST(SessionStoreTest, ExplicitOpsAndErrorPaths) {
  const std::string dir = FreshDataDir("ops");
  // No data dir: persistence ops fail loudly with Unavailable.
  {
    Server server = MakeServer("");
    ParseOk(server.HandleLine(CreateRequest("a", 61)));
    const std::string response = server.HandleLine(
        "{\"op\":\"save_session\",\"session\":\"a\"}");
    EXPECT_NE(response.find("\"Unavailable\""), std::string::npos)
        << response;
  }
  Server server = MakeServer(dir);
  // load_session of a never-saved name.
  EXPECT_NE(server.HandleLine(
                    "{\"op\":\"load_session\",\"session\":\"ghost\"}")
                .find("\"Not found\""),
            std::string::npos);
  ParseOk(server.HandleLine(CreateRequest("a", 61)));
  ParseOk(server.HandleLine("{\"op\":\"save_session\",\"session\":\"a\"}"));
  // load_session while live.
  EXPECT_NE(server.HandleLine(
                    "{\"op\":\"load_session\",\"session\":\"a\"}")
                .find("\"Already exists\""),
            std::string::npos);
  // Recreating over a persisted name is refused too.
  EXPECT_NE(server.HandleLine(CreateRequest("a", 61))
                .find("\"Already exists\""),
            std::string::npos);
  // Dropping removes both the live session and its snapshot.
  const JsonValue dropped = ParseOk(
      server.HandleLine("{\"op\":\"drop_session\",\"session\":\"a\"}"));
  EXPECT_TRUE(dropped.Find("deleted_snapshot")->bool_value());
  EXPECT_NE(server.HandleLine(
                    "{\"op\":\"q2\",\"session\":\"a\",\"val_indices\":[0]}")
                .find("\"Not found\""),
            std::string::npos);
  // Explicit load_session after an eviction-style save.
  ParseOk(server.HandleLine(CreateRequest("b", 62)));
  const std::vector<std::string> b_before = Q2Sweep(&server, "b");
  ParseOk(server.HandleLine("{\"op\":\"save_session\",\"session\":\"b\"}"));
  ParseOk(server.HandleLine("{\"op\":\"drop_session\",\"session\":\"b\"}"));
  // drop_session deleted the snapshot, so save again via a fresh copy.
  ParseOk(server.HandleLine(CreateRequest("b", 62)));
  ParseOk(server.HandleLine("{\"op\":\"save_session\",\"session\":\"b\"}"));
  Server other = MakeServer(dir);
  const JsonValue loaded = ParseOk(other.HandleLine(
      "{\"op\":\"load_session\",\"session\":\"b\"}"));
  EXPECT_EQ(loaded.Find("name")->string_value(), "b");
  EXPECT_EQ(Q2Sweep(&other, "b"), b_before);
}

TEST(SessionStoreTest, TamperedTaskFingerprintFailsRehydration) {
  const std::string dir = FreshDataDir("tamper");
  {
    Server server = MakeServer(dir);
    ParseOk(server.HandleLine(CreateRequest("t", 91)));
    ParseOk(server.HandleLine("{\"op\":\"save_session\",\"session\":\"t\"}"));
  }
  // Corrupt the fingerprint: simulates the spec rebuilding *different*
  // validation/test/oracle data than the snapshot was saved against.
  const std::string path = dir + "/t.cpsession";
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string text = buffer.str();
  const size_t pos = text.find("fingerprint ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos + 12, 16, "0000000000000000");
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.close();

  Server reloaded = MakeServer(dir);
  const std::string response = reloaded.HandleLine(
      "{\"op\":\"q2\",\"session\":\"t\",\"val_indices\":[0]}");
  EXPECT_NE(response.find("\"Internal error\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("does not match the snapshot"), std::string::npos)
      << response;
}

TEST(SessionStoreTest, EvictedSessionRefusesLateWritesOnDetachedInstance) {
  // The eviction sweep retires its victim: a request handler that grabbed
  // the shared_ptr before the registry drop must NOT be able to apply a
  // write to the detached instance — such a write would be acknowledged
  // and then silently lost, because rehydration reads the snapshot.
  const std::string dir = FreshDataDir("retire");
  Server server = MakeServer(dir, /*max_sessions=*/1);
  ParseOk(server.HandleLine(CreateRequest("w1", 81)));
  const std::shared_ptr<ServeSession> detached =
      server.registry().Get("w1").value();
  // Creating w2 evicts w1 (the LRU) to disk.
  ParseOk(server.HandleLine(CreateRequest("w2", 82)));
  EXPECT_FALSE(server.registry().Get("w1").ok());

  // A late write through the detached pointer is refused, never applied.
  const Result<JsonValue> late = detached->CleanStep(1);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(late.status().message().find("evicted"), std::string::npos);
  // Reads on the detached instance still answer (harmless, and version-
  // stamped like any read).
  EXPECT_TRUE(detached->Q2(std::vector<double>(4, 0.0)).ok());

  // The retried write lands on the rehydrated incarnation and cleans the
  // exact tuple the refused write would have — nothing was lost or
  // double-applied.
  Server twin = MakeServer("");
  ParseOk(twin.HandleLine(CreateRequest("w1", 81)));
  const JsonValue twin_step = ParseOk(
      twin.HandleLine("{\"op\":\"clean_step\",\"session\":\"w1\"}"));
  const JsonValue retried = ParseOk(
      server.HandleLine("{\"op\":\"clean_step\",\"session\":\"w1\"}"));
  EXPECT_EQ(CleanedIds(retried), CleanedIds(twin_step));
}

TEST(SessionStoreTest, WriteDuringEvictionSnapshotTriggersDirtyResave) {
  // Deterministic replay of the sweep's interleaving: snapshot serialized,
  // then a write lands (acknowledged), then the sweep retires. The dirty
  // flag (write_seq advanced past the snapshot's) must force a re-save
  // that contains the write.
  const std::string dir = FreshDataDir("dirty_resave");
  SessionStore store(SessionStoreOptions{dir, 0, 1024});
  const JsonValue spec =
      ParseJson(StrFormat(
                    "{\"session\":\"d\",\"source\":\"synthetic\",\"dataset\":"
                    "\"store\",\"train_rows\":%d,\"val_size\":%d,"
                    "\"test_size\":6,\"seed\":83,\"numeric\":4,"
                    "\"categorical\":0,\"noise_sigma\":0.3,"
                    "\"missing_rate\":0.25,\"k\":%d}",
                    kTrain, kVal, kK))
          .value();
  const ServeSessionOptions options =
      ServeSessionOptionsFromRequest(spec, 1024).value();
  CleaningTask task = BuildTaskFromSpec(spec).value();
  const std::shared_ptr<ServeSession> session =
      ServeSession::Make("d", std::move(task), options, spec).value();

  // Sweep phase 1: serialize + write the snapshot, note the write seq.
  uint64_t snapshot_write_seq = 0;
  ASSERT_TRUE(store.Save(*session, &snapshot_write_seq).ok());
  // The racing write: acknowledged to its client.
  const JsonValue stepped = session->CleanStep(2).value();
  const size_t steps_applied = stepped.Find("cleaned")->array().size();
  ASSERT_GT(steps_applied, 0u);
  EXPECT_GT(session->write_seq(), snapshot_write_seq);

  // Sweep phase 2: retire. The dirty flag must demand a re-save...
  const std::optional<std::string> resnapshot =
      session->RetireAndResnapshot(snapshot_write_seq);
  ASSERT_TRUE(resnapshot.has_value());
  ASSERT_TRUE(store.WriteSnapshot("d", *resnapshot).ok());
  // ...and the re-saved snapshot carries the acknowledged write.
  const std::shared_ptr<ServeSession> rehydrated = store.Load("d").value();
  const JsonValue stats = rehydrated->Stats();
  EXPECT_EQ(static_cast<size_t>(stats.Find("num_cleaned")->number_value()),
            steps_applied);

  // A clean (no write since serialization) retire needs no re-save.
  uint64_t clean_seq = 0;
  ASSERT_TRUE(store.Save(*rehydrated, &clean_seq).ok());
  EXPECT_FALSE(rehydrated->RetireAndResnapshot(clean_seq).has_value());
  // Retired instances refuse writes; Unretire (the sweep's rollback when
  // the re-save fails) restores them.
  EXPECT_EQ(rehydrated->CleanStep(1).status().code(),
            StatusCode::kUnavailable);
  rehydrated->Unretire();
  EXPECT_TRUE(rehydrated->CleanStep(1).ok());
}

TEST(SessionStoreTest, MaxSessionsWithoutDataDirRefusesCreation) {
  ServerOptions options;
  options.max_sessions = 1;
  Server server(options);
  ParseOk(server.HandleLine(CreateRequest("only", 71)));
  const std::string response = server.HandleLine(CreateRequest("more", 72));
  EXPECT_NE(response.find("\"Unavailable\""), std::string::npos)
      << response;
  EXPECT_EQ(server.registry().size(), 1u);
}

}  // namespace
}  // namespace cpclean
