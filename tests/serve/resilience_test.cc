// The TCP transport's resilience contract under deterministic fault
// injection: per-request deadlines answer DeadlineExceeded (with the
// request's id) while the connection survives and the late result is
// discarded whole; oversized request lines are refused loudly; EMFILE on
// accept turns the surplus connection away with a structured line; a
// client resetting mid-response never takes the server down; a stalled
// reader is paused at the high-water mark and closed at the hard cap;
// idle connections are reaped; and the test-only fault_inject op is
// gated on explicit arming.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "serve/server.h"
#include "tests/serve/serve_test_util.h"

namespace cpclean {
namespace {

using serve_test::LineClient;
using serve_test::ParseOk;

class ResilienceTest : public ::testing::Test {
 protected:
  // Fault rules are process-global; every test starts and ends clean.
  void SetUp() override { FaultInjection::Clear(); }
  void TearDown() override { FaultInjection::Clear(); }
};

/// Starts `server` on an ephemeral port on a background thread and waits
/// for the listener.
std::thread Serve(Server& server) {
  std::thread serving([&server] {
    const Status status = server.ServeTcp(0);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  while (server.port() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.port(), 0);
  return serving;
}

/// The "error" object of a response line; asserts ok:false.
JsonValue ParseError(const std::string& response) {
  auto parsed = ParseJson(response);
  EXPECT_TRUE(parsed.ok()) << response;
  if (!parsed.ok()) return JsonValue();
  const JsonValue* ok = parsed.value().Find("ok");
  EXPECT_TRUE(ok != nullptr && ok->is_bool() && !ok->bool_value())
      << response;
  const JsonValue* error = parsed.value().Find("error");
  if (error == nullptr) {
    ADD_FAILURE() << "response carries no error: " << response;
    return JsonValue();
  }
  return *error;
}

uint64_t ConnectionCounter(Server& server, const char* key) {
  const JsonValue stats = ParseOk(server.HandleLine("{\"op\":\"stats\"}"));
  return static_cast<uint64_t>(
      stats.Find("connections")->Find(key)->number_value());
}

TEST_F(ResilienceTest, DeadlineAnswersWithIdAndConnectionSurvives) {
  ServerOptions options;
  options.request_timeout_ms = 80;
  Server server(options);
  std::thread serving = Serve(server);
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  // Stall execution far past the deadline. The reaper, not the worker,
  // answers — and the connection keeps working afterwards.
  ASSERT_TRUE(FaultInjection::Configure("serve.exec=sleep:500").ok());
  const std::string response = client.Issue("{\"op\":\"ping\",\"id\":77}");
  const auto parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok()) << response;
  EXPECT_EQ(static_cast<int>(parsed.value().Find("id")->number_value()), 77);
  const JsonValue error = ParseError(response);
  EXPECT_EQ(error.Find("code")->string_value(), "Deadline exceeded");

  // The worker is still sleeping; the next request queues behind it
  // (serial per connection) and then answers normally — the late result
  // of the expired request was discarded whole, never leaked into this
  // slot or torn mid-line.
  FaultInjection::Clear();
  Server twin;
  EXPECT_EQ(client.Issue("{\"op\":\"ping\",\"id\":78}"),
            twin.HandleLine("{\"op\":\"ping\",\"id\":78}"));
  EXPECT_GE(ConnectionCounter(server, "deadline_expired"), 1u);

  server.Stop();
  serving.join();
}

TEST_F(ResilienceTest, OversizedRequestLineRefusedLoudlyThenClosed) {
  ServerOptions options;
  options.max_request_bytes = 256;
  Server server(options);
  std::thread serving = Serve(server);

  {
    LineClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send(std::string(300, 'x') + "\n"));
    const JsonValue error = ParseError(client.ReadLine());
    EXPECT_EQ(error.Find("code")->string_value(), "Invalid argument");
    EXPECT_NE(error.Find("message")->string_value().find(
                  "max-request-bytes"),
              std::string::npos);
    EXPECT_EQ(client.ReadLine(), "");  // connection closed behind the error
  }
  {
    // A newline-less flood past the limit is cut off too, without waiting
    // for a newline that may never come.
    LineClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send(std::string(100000, 'y')));
    const JsonValue error = ParseError(client.ReadLine());
    EXPECT_EQ(error.Find("code")->string_value(), "Invalid argument");
    EXPECT_EQ(client.ReadLine(), "");
  }
  // The server itself is fine.
  LineClient after(server.port());
  ASSERT_TRUE(after.connected());
  Server twin;
  EXPECT_EQ(after.Issue("{\"op\":\"ping\",\"id\":1}"),
            twin.HandleLine("{\"op\":\"ping\",\"id\":1}"));
  EXPECT_GE(ConnectionCounter(server, "oversized_requests"), 2u);

  server.Stop();
  serving.join();
}

TEST_F(ResilienceTest, EmfileOnAcceptTurnsTheConnectionAwayLoudly) {
  Server server;
  std::thread serving = Serve(server);

  // Simulated fd-table exhaustion on the next accept: the reserve-fd path
  // must still accept the surplus connection and tell it why it is being
  // turned away, instead of leaving it dangling in the backlog.
  ASSERT_TRUE(FaultInjection::Configure("el.accept=once").ok());
  LineClient rejected(server.port());
  ASSERT_TRUE(rejected.connected());
  const JsonValue error = ParseError(rejected.ReadLine());
  EXPECT_EQ(error.Find("code")->string_value(), "Unavailable");
  EXPECT_NE(error.Find("message")->string_value().find("file descriptors"),
            std::string::npos);
  EXPECT_EQ(rejected.ReadLine(), "");

  // One-shot fault: the next connection gets normal service.
  LineClient accepted(server.port());
  ASSERT_TRUE(accepted.connected());
  Server twin;
  EXPECT_EQ(accepted.Issue("{\"op\":\"ping\",\"id\":9}"),
            twin.HandleLine("{\"op\":\"ping\",\"id\":9}"));

  server.Stop();
  serving.join();
}

TEST_F(ResilienceTest, MidResponseResetNeverTakesTheServerDown) {
  Server server;
  std::thread serving = Serve(server);
  Server twin;

  {
    // Injected EPIPE on the very first response write.
    ASSERT_TRUE(FaultInjection::Configure("el.send=once").ok());
    LineClient client(server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.Issue("{\"op\":\"ping\",\"id\":1}"), "");
    FaultInjection::Clear();
  }
  {
    // Injected reset on read.
    ASSERT_TRUE(FaultInjection::Configure("el.recv=once").ok());
    LineClient client(server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.Issue("{\"op\":\"ping\",\"id\":2}"), "");
    FaultInjection::Clear();
  }
  {
    // A real client reset: SO_LINGER(0) close sends RST, so the server's
    // response write hits ECONNRESET/EPIPE on a live kernel socket. The
    // MSG_NOSIGNAL send must absorb it — no SIGPIPE, no crash.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string request = "{\"op\":\"ping\",\"id\":3}\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));
    linger hard_reset{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_reset,
                 sizeof(hard_reset));
    ::close(fd);
  }
  // After all three, the server still serves byte-identical responses.
  LineClient after(server.port());
  ASSERT_TRUE(after.connected());
  EXPECT_EQ(after.Issue("{\"op\":\"ping\",\"id\":4}"),
            twin.HandleLine("{\"op\":\"ping\",\"id\":4}"));

  server.Stop();
  serving.join();
}

TEST_F(ResilienceTest, PartialWritesWithEagainStillDeliverExactBytes) {
  Server server;
  std::thread serving = Serve(server);
  // One byte per send, and every third attempt EAGAINs: the response
  // crosses many flush rounds and EPOLLOUT re-entries, and must still
  // arrive byte-identical to the canonical rendering.
  ASSERT_TRUE(FaultInjection::Configure(
                  "el.send_short=always;el.send_eagain=every:3")
                  .ok());
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  Server twin;
  for (int i = 0; i < 3; ++i) {
    const std::string request = StrFormat("{\"op\":\"ping\",\"id\":%d}", i);
    EXPECT_EQ(client.Issue(request), twin.HandleLine(request));
  }
  FaultInjection::Clear();
  server.Stop();
  serving.join();
}

TEST_F(ResilienceTest, StalledReaderIsBoundedThenClosedAtTheCap) {
  ServerOptions options;
  options.output_hwm_bytes = 2048;
  options.max_output_bytes = 8192;
  Server server(options);
  std::thread serving = Serve(server);

  // The socket "fills" instantly, so every response queues server-side
  // while the client pipelines away without reading — the classic
  // stalled-reader leak. The hwm pauses its reads; the cap closes it.
  ASSERT_TRUE(FaultInjection::Configure("el.send_eagain=always").ok());
  LineClient stalled(server.port());
  ASSERT_TRUE(stalled.connected());
  std::string block;
  for (int i = 0; i < 600; ++i) {
    block += StrFormat("{\"op\":\"ping\",\"id\":%d}\n", i);
  }
  ASSERT_TRUE(stalled.Send(block));
  // The close is the observable: recv sees FIN/RST once queued output
  // passes max_output_bytes.
  EXPECT_EQ(stalled.ReadLine(), "");

  FaultInjection::Clear();
  EXPECT_GE(ConnectionCounter(server, "overflow_closed"), 1u);
  // The server (and new connections) are unaffected.
  LineClient after(server.port());
  ASSERT_TRUE(after.connected());
  Server twin;
  EXPECT_EQ(after.Issue("{\"op\":\"ping\",\"id\":1}"),
            twin.HandleLine("{\"op\":\"ping\",\"id\":1}"));

  server.Stop();
  serving.join();
}

TEST_F(ResilienceTest, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  Server server(options);
  std::thread serving = Serve(server);

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  Server twin;
  EXPECT_EQ(client.Issue("{\"op\":\"ping\",\"id\":1}"),
            twin.HandleLine("{\"op\":\"ping\",\"id\":1}"));
  // Go quiet; the reaper closes the connection (recv returns 0).
  EXPECT_EQ(client.ReadLine(), "");
  EXPECT_GE(ConnectionCounter(server, "idle_reaped"), 1u);

  server.Stop();
  serving.join();
}

TEST_F(ResilienceTest, FaultInjectOpIsGatedAndRoundtrips) {
  Server server;
  if (std::getenv("CPCLEAN_FAULTS") == nullptr &&
      !FaultInjection::OpsArmed()) {
    // Unarmed (no env, no ArmOps yet in this process): the op must refuse
    // — a production client cannot start injecting faults over the wire.
    const JsonValue error = ParseError(server.HandleLine(
        "{\"op\":\"fault_inject\",\"config\":\"serve.exec=once\"}"));
    EXPECT_EQ(error.Find("code")->string_value(), "Unavailable");
  }
  FaultInjection::ArmOps();
  JsonValue result = ParseOk(server.HandleLine(
      "{\"op\":\"fault_inject\",\"config\":\"store.rename=once\"}"));
  EXPECT_TRUE(result.Find("active")->bool_value());
  // Config-less form reports without reconfiguring.
  result = ParseOk(server.HandleLine("{\"op\":\"fault_inject\"}"));
  EXPECT_TRUE(result.Find("active")->bool_value());
  ASSERT_EQ(result.Find("sites")->array().size(), 1u);
  EXPECT_EQ(result.Find("sites")->array()[0].Find("site")->string_value(),
            "store.rename");
  // Empty config clears.
  result = ParseOk(
      server.HandleLine("{\"op\":\"fault_inject\",\"config\":\"\"}"));
  EXPECT_FALSE(result.Find("active")->bool_value());
  // Malformed configs are structured errors, and leave rules untouched.
  const JsonValue error = ParseError(server.HandleLine(
      "{\"op\":\"fault_inject\",\"config\":\"store.rename=sometimes\"}"));
  EXPECT_EQ(error.Find("code")->string_value(), "Invalid argument");
}

}  // namespace
}  // namespace cpclean
