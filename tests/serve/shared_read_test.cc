// Shared-read concurrency within ONE session: q2/predict readers hammer a
// session from threads and TCP connections while a writer advances
// clean_step. Every answer a reader observes must be bit-identical to the
// serial replay's answer *at the dataset version stamped into the
// response* — concurrent readers never see torn state, half-applied
// cleaning steps, or a cache entry from the wrong version. Also covers
// the --max-connections admission control.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "serve/server.h"
#include "tests/serve/serve_test_util.h"

namespace cpclean {
namespace {

using serve_test::LineClient;
using serve_test::ParseOk;

constexpr int kTrain = 40;
constexpr int kVal = 8;
constexpr int kK = 3;
constexpr int kWriterSteps = 3;
constexpr int kReaders = 4;
constexpr int kReadsPerReader = 32;

std::string CreateRequest(const std::string& name) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"shared\",\"train_rows\":%d,\"val_size\":"
      "%d,\"test_size\":8,\"seed\":97,\"numeric\":4,\"categorical\":0,"
      "\"noise_sigma\":0.3,\"missing_rate\":0.25,\"k\":%d}",
      name.c_str(), kTrain, kVal, kK);
}

std::string Q2Request(const std::string& name, int v) {
  return StrFormat(
      "{\"op\":\"q2\",\"session\":\"%s\",\"val_indices\":[%d]}",
      name.c_str(), v);
}

std::string PredictRequest(const std::string& name, int v) {
  return StrFormat(
      "{\"op\":\"predict\",\"session\":\"%s\",\"val_indices\":[%d]}",
      name.c_str(), v);
}

/// Per-version serial ground truth: version → per-val-index result dumps.
struct VersionedExpectations {
  std::map<uint64_t, std::vector<std::string>> q2;
  std::map<uint64_t, std::vector<std::string>> predict;
};

uint64_t ResultVersion(const JsonValue& result) {
  return static_cast<uint64_t>(result.Find("version")->number_value());
}

/// Replays the whole cleaning path serially on a twin server, recording
/// every (version, val index) answer the concurrent run could observe.
VersionedExpectations MakeExpectations() {
  VersionedExpectations expected;
  Server twin;
  ParseOk(twin.HandleLine(CreateRequest("t")));
  for (int step = 0; step <= kWriterSteps; ++step) {
    std::vector<std::string> q2_dumps, predict_dumps;
    uint64_t version = 0;
    for (int v = 0; v < kVal; ++v) {
      const JsonValue q2 = ParseOk(twin.HandleLine(Q2Request("t", v)));
      const JsonValue& one = q2.Find("results")->array()[0];
      version = ResultVersion(one);
      q2_dumps.push_back(one.Dump());
      const JsonValue predict =
          ParseOk(twin.HandleLine(PredictRequest("t", v)));
      predict_dumps.push_back(predict.Find("results")->array()[0].Dump());
    }
    expected.q2[version] = std::move(q2_dumps);
    expected.predict[version] = std::move(predict_dumps);
    if (step < kWriterSteps) {
      ParseOk(twin.HandleLine(
          StrFormat("{\"op\":\"clean_step\",\"session\":\"t\"}")));
    }
  }
  return expected;
}

/// One reader's loop: issue q2/predict alternately, check each answer
/// against the serial expectation at the version it reports.
template <typename IssueFn>
void ReadAndCheck(const VersionedExpectations& expected,
                  const std::string& name, int reader, IssueFn issue,
                  std::atomic<int>* failures) {
  for (int r = 0; r < kReadsPerReader; ++r) {
    const int v = (reader + r) % kVal;
    const bool use_q2 = (r % 2) == 0;
    const JsonValue result = ParseOk(
        issue(use_q2 ? Q2Request(name, v) : PredictRequest(name, v)));
    const JsonValue* one = result.Find("results");
    if (one == nullptr || one->array().size() != 1) {
      ++*failures;
      continue;
    }
    const uint64_t version = ResultVersion(one->array()[0]);
    const auto& table = use_q2 ? expected.q2 : expected.predict;
    const auto it = table.find(version);
    if (it == table.end()) {
      ADD_FAILURE() << "answer at unknown version " << version;
      ++*failures;
      continue;
    }
    const std::string got = one->array()[0].Dump();
    if (got != it->second[static_cast<size_t>(v)]) {
      ADD_FAILURE() << "bit mismatch at version " << version << " val " << v
                    << "\n got: " << got
                    << "\nwant: " << it->second[static_cast<size_t>(v)];
      ++*failures;
    }
  }
}

TEST(SharedReadTest, ParallelReadersUnderWriterBitMatchSerialReplay) {
  const VersionedExpectations expected = MakeExpectations();

  Server server;
  ParseOk(server.HandleLine(CreateRequest("s")));
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int reader = 0; reader < kReaders; ++reader) {
    readers.emplace_back([&server, &expected, &failures, reader] {
      ReadAndCheck(expected, "s", reader,
                   [&server](const std::string& line) {
                     return server.HandleLine(line);
                   },
                   &failures);
    });
  }
  std::thread writer([&server] {
    for (int step = 0; step < kWriterSteps; ++step) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ParseOk(server.HandleLine(
          "{\"op\":\"clean_step\",\"session\":\"s\"}"));
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles, the session sits at the final version and
  // serves the serial replay's final answers.
  const JsonValue final_q2 = ParseOk(server.HandleLine(Q2Request("s", 0)));
  const uint64_t final_version =
      ResultVersion(final_q2.Find("results")->array()[0]);
  EXPECT_EQ(expected.q2.rbegin()->first, final_version);
}

TEST(SharedReadTest, TcpReadersUnderWriterBitMatchSerialReplay) {
  const VersionedExpectations expected = MakeExpectations();

  Server server;
  std::thread serving([&server] {
    const Status status = server.ServeTcp(0);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  while (server.port() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int port = server.port();
  ASSERT_GE(port, 0);
  {
    LineClient creator(port);
    ASSERT_TRUE(creator.connected());
    ParseOk(creator.Issue(CreateRequest("s")));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int reader = 0; reader < 2; ++reader) {
    readers.emplace_back([port, &expected, &failures, reader] {
      LineClient client(port);
      if (!client.connected()) {
        ++failures;
        return;
      }
      ReadAndCheck(expected, "s", reader,
                   [&client](const std::string& line) {
                     return client.Issue(line);
                   },
                   &failures);
    });
  }
  std::thread writer([port, &failures] {
    LineClient client(port);
    if (!client.connected()) {
      ++failures;
      return;
    }
    for (int step = 0; step < kWriterSteps; ++step) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ParseOk(client.Issue("{\"op\":\"clean_step\",\"session\":\"s\"}"));
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  server.Stop();
  serving.join();
}

TEST(SharedReadTest, ConnectionLimitRejectsWithStructuredError) {
  ServerOptions options;
  options.max_connections = 2;
  Server server(options);
  std::thread serving([&server] {
    const Status status = server.ServeTcp(0);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  while (server.port() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int port = server.port();
  ASSERT_GE(port, 0);

  LineClient first(port);
  auto second = std::make_unique<LineClient>(port);
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second->connected());
  ParseOk(first.Issue("{\"op\":\"ping\"}"));
  ParseOk(second->Issue("{\"op\":\"ping\"}"));

  // The third connection is accepted only to be told why it is refused.
  LineClient third(port);
  ASSERT_TRUE(third.connected());
  const std::string rejection = third.ReadLine();
  auto parsed = ParseJson(rejection);
  ASSERT_TRUE(parsed.ok()) << rejection;
  EXPECT_FALSE(parsed.value().Find("ok")->bool_value());
  EXPECT_EQ(parsed.value().Find("error")->Find("code")->string_value(),
            "Unavailable");

  // The admission counter shows up in global stats.
  const JsonValue stats = ParseOk(first.Issue("{\"op\":\"stats\"}"));
  EXPECT_GE(
      stats.Find("connections")->Find("rejected")->number_value(), 1.0);
  EXPECT_EQ(stats.Find("connections")->Find("max")->number_value(), 2.0);

  // Freeing a slot re-admits: close `second`, then retry until the
  // detached handler signs off and a fresh connection gets a real answer.
  second.reset();
  bool readmitted = false;
  for (int attempt = 0; attempt < 200 && !readmitted; ++attempt) {
    LineClient retry(port);
    ASSERT_TRUE(retry.connected());
    const std::string response = retry.Issue("{\"op\":\"ping\"}");
    auto reparsed = ParseJson(response);
    if (reparsed.ok() && reparsed.value().Find("ok") != nullptr &&
        reparsed.value().Find("ok")->bool_value()) {
      readmitted = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_TRUE(readmitted);
  ParseOk(first.Issue("{\"op\":\"ping\"}"));

  server.Stop();
  serving.join();
}

}  // namespace
}  // namespace cpclean
