// Concurrency guarantees of the serving layer: N sessions running on the
// process-global shared pool — driven from concurrent threads and from
// concurrent TCP connections — produce bit-identical certify / Q2 answers
// and cleaning orders to a serial direct-library run of each session.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cleaning/cp_clean.h"
#include "common/string_util.h"
#include "core/fast_q2.h"
#include "eval/experiment.h"
#include "knn/kernel.h"
#include "serve/server.h"
#include "tests/serve/serve_test_util.h"

namespace cpclean {
namespace {

using serve_test::LineClient;
using serve_test::NumberArray;
using serve_test::ParseOk;

constexpr int kTrain = 40;
constexpr int kVal = 10;
constexpr int kTest = 10;
constexpr int kK = 3;
constexpr int kSessions = 3;
constexpr int kSteps = 3;

uint64_t SessionSeed(int s) { return 101 + 17 * static_cast<uint64_t>(s); }

std::string CreateRequest(const std::string& name, int s) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"conc\",\"train_rows\":%d,\"val_size\":%d,"
      "\"test_size\":%d,\"seed\":%d,\"numeric\":4,\"categorical\":0,"
      "\"noise_sigma\":0.3,\"missing_rate\":0.25,\"k\":%d}",
      name.c_str(), kTrain, kVal, kTest, static_cast<int>(SessionSeed(s)),
      kK);
}

PreparedExperiment MakeReference(int s, const SimilarityKernel& kernel) {
  ExperimentConfig config;
  config.dataset.name = "conc";
  config.dataset.synthetic.name = "conc";
  config.dataset.synthetic.num_rows = kTrain + kVal + kTest;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = SessionSeed(s);
  config.dataset.missing_rate = 0.25;
  config.dataset.val_size = kVal;
  config.dataset.test_size = kTest;
  config.k = kK;
  config.seed = SessionSeed(s);
  return PrepareExperiment(config, kernel).value();
}

/// What one session's serial ground truth looks like: Q2 fractions for
/// every validation point before cleaning, the greedy cleaning order, and
/// the fractions afterwards.
struct SerialTrace {
  std::vector<std::vector<double>> q2_before;
  std::vector<int> clean_order;
  std::vector<std::vector<double>> q2_after;
};

SerialTrace MakeSerialTrace(const PreparedExperiment& prepared,
                            const SimilarityKernel& kernel) {
  SerialTrace trace;
  CpCleanOptions options;
  options.k = kK;
  options.num_threads = 1;  // fully serial reference
  options.track_test_accuracy = false;
  CleaningSession session(&prepared.task, &kernel, options);
  FastQ2 q2(&session.working(), kK);
  for (int v = 0; v < kVal; ++v) {
    q2.SetTestPoint(prepared.task.val_x[static_cast<size_t>(v)], kernel);
    trace.q2_before.push_back(q2.Fractions());
  }
  for (int s = 0; s < kSteps; ++s) {
    const int cleaned = session.StepGreedy();
    if (cleaned < 0) break;
    trace.clean_order.push_back(cleaned);
  }
  for (int v = 0; v < kVal; ++v) {
    q2.SetTestPoint(prepared.task.val_x[static_cast<size_t>(v)], kernel);
    trace.q2_after.push_back(q2.Fractions());
  }
  return trace;
}

/// Drives one session through the server (already created) and checks
/// every answer against the serial trace. `issue` sends a request line and
/// returns the response line.
template <typename IssueFn>
void DriveAndCheckSession(const std::string& name, const SerialTrace& trace,
                          IssueFn issue) {
  // Interleaved q2 sweep (twice: the repeat must hit the cache and still
  // serve identical bits).
  for (int pass = 0; pass < 2; ++pass) {
    for (int v = 0; v < kVal; ++v) {
      const JsonValue result = ParseOk(
          issue(StrFormat("{\"op\":\"q2\",\"session\":\"%s\","
                          "\"val_indices\":[%d]}",
                          name.c_str(), v)));
      const std::vector<double> got =
          NumberArray(*result.Find("results")->array()[0].Find("probs"));
      const std::vector<double>& want =
          trace.q2_before[static_cast<size_t>(v)];
      ASSERT_EQ(got.size(), want.size());
      for (size_t y = 0; y < want.size(); ++y) {
        EXPECT_EQ(got[y], want[y])
            << name << " val " << v << " pass " << pass;
      }
    }
  }
  // Cleaning steps, one request per step.
  for (size_t s = 0; s < trace.clean_order.size(); ++s) {
    const JsonValue result = ParseOk(
        issue(StrFormat("{\"op\":\"clean_step\",\"session\":\"%s\"}",
                        name.c_str())));
    ASSERT_EQ(result.Find("cleaned")->array().size(), 1u);
    EXPECT_EQ(
        static_cast<int>(result.Find("cleaned")->array()[0].number_value()),
        trace.clean_order[s])
        << name << " step " << s;
  }
  // Post-cleaning sweep.
  for (int v = 0; v < kVal; ++v) {
    const JsonValue result = ParseOk(
        issue(StrFormat("{\"op\":\"q2\",\"session\":\"%s\","
                        "\"val_indices\":[%d]}",
                        name.c_str(), v)));
    const std::vector<double> got =
        NumberArray(*result.Find("results")->array()[0].Find("probs"));
    const std::vector<double>& want = trace.q2_after[static_cast<size_t>(v)];
    ASSERT_EQ(got.size(), want.size());
    for (size_t y = 0; y < want.size(); ++y) {
      EXPECT_EQ(got[y], want[y]) << name << " val " << v << " after clean";
    }
  }
  // The repeat sweep must have produced cache hits.
  const JsonValue stats = ParseOk(
      issue(StrFormat("{\"op\":\"stats\",\"session\":\"%s\"}",
                      name.c_str())));
  EXPECT_GE(stats.Find("cache")->Find("hits")->number_value(), kVal);
}

TEST(ConcurrentServeTest, SessionsOnSharedPoolBitMatchSerial) {
  NegativeEuclideanKernel kernel;
  std::vector<SerialTrace> traces;
  for (int s = 0; s < kSessions; ++s) {
    traces.push_back(MakeSerialTrace(MakeReference(s, kernel), kernel));
  }

  Server server;
  for (int s = 0; s < kSessions; ++s) {
    ParseOk(server.HandleLine(CreateRequest(StrFormat("s%d", s), s)));
  }
  // One thread per session, all hammering the router (and the shared
  // global pool underneath) at once.
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&server, &traces, s] {
      DriveAndCheckSession(
          StrFormat("s%d", s), traces[static_cast<size_t>(s)],
          [&server](const std::string& line) {
            return server.HandleLine(line);
          });
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(ConcurrentServeTest, ConcurrentTcpConnectionsBitMatchSerial) {
  NegativeEuclideanKernel kernel;
  std::vector<SerialTrace> traces;
  for (int s = 0; s < kSessions; ++s) {
    traces.push_back(MakeSerialTrace(MakeReference(s, kernel), kernel));
  }

  Server server;
  std::thread serving([&server] {
    const Status status = server.ServeTcp(0);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  while (server.port() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const int port = server.port();
  ASSERT_GE(port, 0);

  // One connection per session, each created and driven concurrently over
  // its own socket.
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([port, &traces, &failures, s] {
      LineClient client(port);
      if (!client.connected()) {
        ++failures;
        return;
      }
      const std::string name = StrFormat("tcp%d", s);
      ParseOk(client.Issue(CreateRequest(name, s)));
      DriveAndCheckSession(name, traces[static_cast<size_t>(s)],
                           [&client](const std::string& line) {
                             return client.Issue(line);
                           });
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  server.Stop();
  serving.join();
}

TEST(ConcurrentServeTest, TcpShutdownOpAcksBeforeClosing) {
  // A client-initiated shutdown must (a) deliver its response over the
  // very connection that asked, and (b) unwind ServeTcp without Stop().
  Server server;
  std::thread serving([&server] {
    const Status status = server.ServeTcp(0);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  while (server.port() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.port(), 0);
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  const std::string response = client.Issue("{\"op\":\"shutdown\"}");
  auto parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok()) << "no shutdown ack received: " << response;
  EXPECT_TRUE(parsed.value().Find("ok")->bool_value());
  EXPECT_TRUE(parsed.value()
                  .Find("result")
                  ->Find("stopping")
                  ->bool_value());
  serving.join();
  EXPECT_EQ(server.port(), -2);  // listener terminated
}

}  // namespace
}  // namespace cpclean
