#include "serve/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace cpclean {
namespace {

TEST(JsonTest, DumpScalars) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue(-3).Dump(), "-3");
  EXPECT_EQ(JsonValue(0.5).Dump(), "0.5");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, DumpEscapes) {
  EXPECT_EQ(JsonValue("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue("a\\b").Dump(), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue("a\nb\tc").Dump(), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonValue(std::string("a\x01z")).Dump(), "\"a\\u0001z\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplaces) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("b", JsonValue(1));
  obj.Set("a", JsonValue(2));
  obj.Set("b", JsonValue(3));  // replaces in place, keeps position
  EXPECT_EQ(obj.Dump(), "{\"b\":3,\"a\":2}");
  ASSERT_NE(obj.Find("a"), nullptr);
  EXPECT_EQ(obj.Find("a")->number_value(), 2.0);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonTest, ParseRoundTripsStructures) {
  const std::string text =
      "{\"op\":\"q2\",\"points\":[[1.5,-2],[0,3]],\"flag\":true,"
      "\"nothing\":null}";
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Dump(), text);
}

TEST(JsonTest, NumbersRoundTripExactly) {
  // %.17g must reproduce the double bit-for-bit through dump -> parse —
  // the protocol's bit-identical-results guarantee depends on it.
  const std::vector<double> values = {
      0.1,
      1.0 / 3.0,
      0.47555482810797645,
      -1.2345678901234567e-30,
      9007199254740993.0,  // 2^53 + 1: not representable as an int64 print
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max()};
  for (const double want : values) {
    const std::string text = JsonValue(want).Dump();
    auto parsed = ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << text;
    const double got = parsed.value().number_value();
    EXPECT_EQ(got, want) << text;
  }
}

TEST(JsonTest, NonFiniteDumpsAsNull) {
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).Dump(),
            "null");
}

TEST(JsonTest, ParseStringEscapes) {
  auto parsed = ParseJson("\"a\\u0041\\n\\t\\\\\\\"\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string_value(), "aA\n\t\\\"");
}

TEST(JsonTest, ParseUnicodeEscapes) {
  auto bmp = ParseJson("\"\\u00e9\"");  // é
  ASSERT_TRUE(bmp.ok());
  EXPECT_EQ(bmp.value().string_value(), "\xc3\xa9");
  auto astral = ParseJson("\"\\ud83d\\ude00\"");  // 😀 via surrogate pair
  ASSERT_TRUE(astral.ok());
  EXPECT_EQ(astral.value().string_value(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ParseErrors) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "{\"a\" 1}", "[1] garbage",
        "\"unterminated", "{\"a\":1,}", "nan"}) {
    auto parsed = ParseJson(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << bad;
  }
}

TEST(JsonTest, DepthLimitRejectsHostileNesting) {
  std::string deep(3000, '[');
  auto parsed = ParseJson(deep);
  EXPECT_FALSE(parsed.ok());
}

TEST(JsonTest, FromDoublesAndInts) {
  const JsonValue d = JsonValue::FromDoubles({1.5, 2.0});
  EXPECT_EQ(d.Dump(), "[1.5,2]");
  const JsonValue i = JsonValue::FromInts({3, -4});
  EXPECT_EQ(i.Dump(), "[3,-4]");
}

TEST(JsonTest, Equality) {
  const std::string text = "{\"a\":[1,2,{\"b\":null}]}";
  auto x = ParseJson(text);
  auto y = ParseJson(text);
  ASSERT_TRUE(x.ok() && y.ok());
  EXPECT_EQ(x.value(), y.value());
  auto z = ParseJson("{\"a\":[1,2,{\"b\":0}]}");
  ASSERT_TRUE(z.ok());
  EXPECT_NE(x.value(), z.value());
}

}  // namespace
}  // namespace cpclean
