#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cpclean {
namespace {

JsonValue Payload(int n) {
  JsonValue v = JsonValue::MakeObject();
  v.Set("n", JsonValue(n));
  return v;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  EXPECT_FALSE(cache.Lookup("a", 1).has_value());
  cache.Insert("a", 1, Payload(7));
  const auto hit = cache.Lookup("a", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Payload(7));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, VersionMismatchInvalidates) {
  ResultCache cache(4);
  cache.Insert("a", 1, Payload(7));
  // The dataset moved to version 2: the stale answer must not be served.
  EXPECT_FALSE(cache.Lookup("a", 2).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 0u);
  // Re-computed at version 2, it hits again.
  cache.Insert("a", 2, Payload(8));
  const auto hit = cache.Lookup("a", 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Payload(8));
}

TEST(ResultCacheTest, LruEvictsOldest) {
  ResultCache cache(2);
  cache.Insert("a", 1, Payload(1));
  cache.Insert("b", 1, Payload(2));
  ASSERT_TRUE(cache.Lookup("a", 1).has_value());  // a is now most recent
  cache.Insert("c", 1, Payload(3));               // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup("a", 1).has_value());
  EXPECT_FALSE(cache.Lookup("b", 1).has_value());
  EXPECT_TRUE(cache.Lookup("c", 1).has_value());
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.Insert("a", 1, Payload(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a", 1).has_value());
}

TEST(ResultCacheTest, InsertRefreshesExistingKey) {
  ResultCache cache(2);
  cache.Insert("a", 1, Payload(1));
  cache.Insert("a", 2, Payload(2));  // refresh in place, no second entry
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.Lookup("a", 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, Payload(2));
}

TEST(ResultCacheTest, PointHashDiscriminates) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 3.0000000000000004};
  EXPECT_EQ(HashPointBytes(a), HashPointBytes({1.0, 2.0, 3.0}));
  EXPECT_NE(HashPointBytes(a), HashPointBytes(b));
  EXPECT_NE(QueryCacheKey("q2", "rbf", 3, -1, a),
            QueryCacheKey("q2", "rbf", 3, -1, b));
  EXPECT_NE(QueryCacheKey("q2", "rbf", 3, -1, a),
            QueryCacheKey("q2", "rbf", 5, -1, a));
  EXPECT_NE(QueryCacheKey("q2", "rbf", 3, -1, a),
            QueryCacheKey("certify", "rbf", 3, -1, a));
  EXPECT_NE(QueryCacheKey("certify", "rbf", 3, -1, a),
            QueryCacheKey("certify", "rbf", 3, 2, a));
}

}  // namespace
}  // namespace cpclean
