// The observability surface of the serving layer: the `metrics` op's
// snapshot (instruments, spans, fault sites), the resolved-vs-configured
// worker count in `stats`, the slow-request structured log driven by an
// injected execution stall, and the HTTP `GET /metrics` Prometheus
// endpoint riding the same event loop.

#include <sys/socket.h>
#include <netinet/in.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "serve/server.h"
#include "tests/serve/serve_test_util.h"

namespace cpclean {
namespace {

using serve_test::LineClient;
using serve_test::ParseOk;

std::thread Serve(Server& server) {
  std::thread serving([&server] {
    const Status status = server.ServeTcp(0);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  while (server.port() == -1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(server.port(), 0);
  return serving;
}

/// One-shot HTTP exchange against 127.0.0.1:`port`: sends `request` raw,
/// reads until the server closes. "" on connect failure.
std::string HttpGet(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t w = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsServeTest, StatsReportsConfiguredAndActualWorkers) {
  // Default (0 = hardware concurrency): the configured field stays 0 so
  // smoke diffs are machine-independent, the actual field resolves.
  Server defaults;
  JsonValue stats = ParseOk(
      defaults.HandleLine("{\"op\":\"stats\"}").c_str());
  const JsonValue* conns = stats.Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_EQ(conns->Find("request_workers")->number_value(), 0.0);
  EXPECT_EQ(conns->Find("request_workers_actual")->number_value(),
            static_cast<double>(ThreadPool::HardwareThreads()));
  ASSERT_NE(stats.Find("uptime_ms"), nullptr);

  ServerOptions options;
  options.request_workers = 3;
  Server pinned(options);
  stats = ParseOk(pinned.HandleLine("{\"op\":\"stats\"}").c_str());
  conns = stats.Find("connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_EQ(conns->Find("request_workers")->number_value(), 3.0);
  EXPECT_EQ(conns->Find("request_workers_actual")->number_value(), 3.0);
}

TEST(MetricsServeTest, MetricsOpReportsInstrumentsAndSpans) {
  Server server;
  std::thread serving = Serve(server);
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_NE(client.Issue("{\"op\":\"ping\",\"id\":1}"), "");
  ASSERT_NE(client.Issue("{\"op\":\"ping\",\"id\":2}"), "");

  const JsonValue metrics = ParseOk(client.Issue("{\"op\":\"metrics\"}"));
  const JsonValue* counters = metrics.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* requests = counters->Find("serve.requests_total");
  ASSERT_NE(requests, nullptr);
  // The registry is process-global, so only >= holds across test order.
  EXPECT_GE(requests->number_value(), 2.0);
  ASSERT_NE(counters->Find("serve.accepts_total"), nullptr);

  const JsonValue* gauges = metrics.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("serve.active_connections"), nullptr);

  const JsonValue* histograms = metrics.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* request_ns = histograms->Find("serve.request_ns");
  ASSERT_NE(request_ns, nullptr);
  EXPECT_GE(request_ns->Find("count")->number_value(), 1.0);
  EXPECT_GE(request_ns->Find("p99_ns")->number_value(),
            request_ns->Find("p50_ns")->number_value());
  EXPECT_GE(request_ns->Find("max_ns")->number_value(),
            request_ns->Find("min_ns")->number_value());

  // The pings above were flushed before their responses could be read, so
  // their spans are in the ring.
  const JsonValue* spans = metrics.Find("spans");
  ASSERT_NE(spans, nullptr);
  bool saw_ping_span = false;
  for (const JsonValue& span : spans->array()) {
    if (span.Find("op")->string_value() != "ping") continue;
    saw_ping_span = true;
    const JsonValue* phases = span.Find("phases");
    ASSERT_NE(phases, nullptr);
    ASSERT_NE(phases->Find("queue_wait"), nullptr);
    ASSERT_NE(phases->Find("flush"), nullptr);
    EXPECT_GT(span.Find("total_ns")->number_value(), 0.0);
  }
  EXPECT_TRUE(saw_ping_span);

  ASSERT_NE(metrics.Find("fault_sites"), nullptr);
  ASSERT_NE(metrics.Find("slow_request_ms"), nullptr);

  server.Stop();
  serving.join();
}

TEST(MetricsServeTest, SlowRequestStallEmitsStructuredLogLine) {
  FaultInjection::ArmOps();
  std::mutex log_mu;
  std::vector<std::string> log_lines;
  ServerOptions options;
  options.slow_request_ms = 5;
  options.slow_log = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mu);
    log_lines.push_back(line);
  };
  Server server(options);
  std::thread serving = Serve(server);
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  // A fast ping stays under the threshold: no log line.
  ASSERT_NE(client.Issue("{\"op\":\"ping\",\"id\":1}"), "");
  // Stall execution 25 ms > the 5 ms threshold via the serve.exec site.
  ParseOk(client.Issue(
      "{\"op\":\"fault_inject\",\"config\":\"serve.exec=sleep:25\"}"));
  ASSERT_NE(client.Issue("{\"op\":\"ping\",\"id\":2}"), "");

  // The injected stall shows up as a fire on the serve.exec site in the
  // metrics snapshot (satellite: fault telemetry without arming the op).
  // Checked before clearing the rules — clearing resets the site stats.
  const JsonValue metrics = ParseOk(client.Issue("{\"op\":\"metrics\"}"));
  bool saw_exec_site = false;
  for (const JsonValue& site : metrics.Find("fault_sites")->array()) {
    if (site.Find("site")->string_value() != "serve.exec") continue;
    saw_exec_site = true;
    EXPECT_GE(site.Find("fires")->number_value(), 1.0);
  }
  EXPECT_TRUE(saw_exec_site);
  ParseOk(client.Issue("{\"op\":\"fault_inject\",\"config\":\"\"}"));

  // The log line is emitted just after the response bytes hit the socket;
  // give the poller a beat to get there.
  std::string slow_line;
  for (int i = 0; i < 200 && slow_line.empty(); ++i) {
    {
      std::lock_guard<std::mutex> lock(log_mu);
      for (const std::string& line : log_lines) {
        if (line.find("\"op\":\"ping\"") != std::string::npos) {
          slow_line = line;
        }
      }
    }
    if (slow_line.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_FALSE(slow_line.empty());
  auto parsed = ParseJson(slow_line);
  ASSERT_TRUE(parsed.ok()) << slow_line;
  const JsonValue& entry = parsed.value();
  EXPECT_EQ(entry.Find("event")->string_value(), "slow_request");
  EXPECT_EQ(entry.Find("threshold_ms")->number_value(), 5.0);
  EXPECT_GE(entry.Find("total_ms")->number_value(), 5.0);
  const JsonValue* phases = entry.Find("phases_ms");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->Find("queue_wait"), nullptr);
  ASSERT_NE(phases->Find("flush"), nullptr);

  server.Stop();
  serving.join();
}

TEST(MetricsServeTest, HttpMetricsEndpointServesPrometheusText) {
  ServerOptions options;
  options.metrics_port = 0;  // ephemeral
  Server server(options);
  std::thread serving = Serve(server);
  ASSERT_GE(server.metrics_port(), 0);
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_NE(client.Issue("{\"op\":\"ping\",\"id\":1}"), "");

  const std::string response = HttpGet(
      server.metrics_port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("# TYPE cpclean_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("cpclean_serve_request_ns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(response.find("cpclean_serve_request_ns_count"),
            std::string::npos);

  const std::string missing = HttpGet(
      server.metrics_port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  // The scrape connections must not count against (or show up in) the
  // main transport's connection accounting.
  const JsonValue stats = ParseOk(client.Issue("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.Find("connections")->Find("active")->number_value(), 1.0);

  server.Stop();
  serving.join();
}

}  // namespace
}  // namespace cpclean
