// The served provenance ops (`explain` / `why_certified`): answers must be
// bit-identical to direct core/witness.h calls on the twin dataset,
// version-stamped and cached like every other read, stable across
// save → restart → rehydrate, and coherent under a concurrent cleaning
// writer. Error responses must name the offending field, unknown ops must
// enumerate the registry, and every response carries `proto: 1`.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cleaning/cp_clean.h"
#include "common/string_util.h"
#include "core/witness.h"
#include "eval/experiment.h"
#include "knn/kernel.h"
#include "serve/server.h"

namespace cpclean {
namespace {

constexpr int kTrain = 48;
constexpr int kVal = 12;
constexpr int kTest = 12;
constexpr uint64_t kSeed = 29;
constexpr int kK = 3;

std::string CreateRequest(const std::string& name) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"prov\",\"train_rows\":%d,\"val_size\":%d,"
      "\"test_size\":%d,\"seed\":%d,\"numeric\":4,\"categorical\":0,"
      "\"noise_sigma\":0.3,\"missing_rate\":0.2,\"k\":%d}",
      name.c_str(), kTrain, kVal, kTest, static_cast<int>(kSeed), kK);
}

/// Direct-library twin of CreateRequest's dataset.
PreparedExperiment MakeReference(const SimilarityKernel& kernel) {
  ExperimentConfig config;
  config.dataset.name = "prov";
  config.dataset.synthetic.name = "prov";
  config.dataset.synthetic.num_rows = kTrain + kVal + kTest;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = kSeed;
  config.dataset.missing_rate = 0.2;
  config.dataset.val_size = kVal;
  config.dataset.test_size = kTest;
  config.k = kK;
  config.seed = kSeed;
  return PrepareExperiment(config, kernel).value();
}

JsonValue Respond(Server* server, const std::string& line) {
  const std::string response = server->HandleLine(line);
  auto parsed = ParseJson(response);
  EXPECT_TRUE(parsed.ok()) << response;
  return parsed.ok() ? parsed.value() : JsonValue();
}

JsonValue RespondOk(Server* server, const std::string& line) {
  const JsonValue response = Respond(server, line);
  EXPECT_NE(response.Find("ok"), nullptr) << response.Dump();
  EXPECT_TRUE(response.Find("ok") != nullptr &&
              response.Find("ok")->bool_value())
      << response.Dump();
  const JsonValue* result = response.Find("result");
  return result != nullptr ? *result : JsonValue();
}

std::vector<int> IntArray(const JsonValue& v) {
  std::vector<int> out;
  for (const JsonValue& x : v.array()) {
    out.push_back(static_cast<int>(x.number_value()));
  }
  return out;
}

/// The first per-point result of a batched explain/why_certified response.
JsonValue FirstResult(const JsonValue& result) {
  EXPECT_NE(result.Find("results"), nullptr) << result.Dump();
  EXPECT_EQ(result.Find("count")->number_value(), 1.0);
  return result.Find("results")->array()[0];
}

std::string ExplainRequest(const std::string& session, int val_index) {
  return StrFormat(
      "{\"op\":\"explain\",\"session\":\"%s\",\"val_indices\":[%d]}",
      session.c_str(), val_index);
}

std::string FreshDataDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/cpclean_" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(ExplainServeTest, ServedWitnessesMatchDirectLibraryCallBitForBit) {
  Server server;
  RespondOk(&server, CreateRequest("s"));
  NegativeEuclideanKernel kernel;
  const PreparedExperiment reference = MakeReference(kernel);
  for (int v = 0; v < kVal; ++v) {
    const JsonValue served = FirstResult(RespondOk(
        &server, ExplainRequest("s", v)));
    const auto direct =
        ExplainPrediction(reference.task.incomplete,
                          reference.task.val_x[static_cast<size_t>(v)],
                          kernel, kK);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(served.Find("certain")->bool_value(), direct.value().certain);
    EXPECT_EQ(static_cast<int>(served.Find("label")->number_value()),
              direct.value().label);
    EXPECT_EQ(IntArray(*served.Find("witnesses")), direct.value().tuples);
    EXPECT_EQ(IntArray(*served.Find("support")), direct.value().support);
    EXPECT_EQ(served.Find("minimal")->bool_value(), direct.value().minimal);
  }
}

TEST(ExplainServeTest, CachedRepeatsAndVersionBumpOnCleaning) {
  Server server;
  RespondOk(&server, CreateRequest("s"));
  const std::string request = ExplainRequest("s", 0);
  const std::string first = server.HandleLine(request);
  // Byte-identical repeat: the second answer is a cache hit at the same
  // version, rendered through the same codec.
  EXPECT_EQ(server.HandleLine(request), first);

  RespondOk(&server,
            "{\"op\":\"clean_step\",\"session\":\"s\",\"steps\":1}");
  const JsonValue parsed_first = ParseJson(first).value();
  ASSERT_NE(parsed_first.Find("result"), nullptr) << first;
  const JsonValue before = FirstResult(*parsed_first.Find("result"));
  const JsonValue after = FirstResult(RespondOk(&server, request));
  EXPECT_GT(after.Find("version")->number_value(),
            before.Find("version")->number_value());
}

TEST(ExplainServeTest, WhyCertifiedTrailIsGroundedInWitnessesAndAudit) {
  Server server;
  RespondOk(&server, CreateRequest("s"));
  const JsonValue run = RespondOk(
      &server, "{\"op\":\"clean_run\",\"session\":\"s\",\"budget\":-1}");
  const std::vector<int> cleaned = IntArray(*run.Find("cleaned"));
  ASSERT_FALSE(cleaned.empty());

  for (int v = 0; v < kVal; ++v) {
    const JsonValue why = FirstResult(RespondOk(
        &server,
        StrFormat("{\"op\":\"why_certified\",\"session\":\"s\","
                  "\"val_indices\":[%d]}",
                  v)));
    const JsonValue explain =
        FirstResult(RespondOk(&server, ExplainRequest("s", v)));
    // Same witness extraction behind both ops, at the same version.
    EXPECT_EQ(why.Find("certified")->bool_value(),
              explain.Find("certain")->bool_value());
    EXPECT_EQ(IntArray(*why.Find("witnesses")),
              IntArray(*explain.Find("witnesses")));
    EXPECT_EQ(why.Find("version")->number_value(),
              explain.Find("version")->number_value());

    const std::vector<int> witnesses = IntArray(*why.Find("witnesses"));
    int last_step = 0;
    for (const JsonValue& entry : why.Find("trail")->array()) {
      const int step = static_cast<int>(entry.Find("step")->number_value());
      const int tuple =
          static_cast<int>(entry.Find("tuple")->number_value());
      EXPECT_GT(step, last_step);  // trail follows cleaning order
      last_step = step;
      // Every trail entry names a witness tuple that really was cleaned.
      EXPECT_TRUE(std::binary_search(witnesses.begin(), witnesses.end(),
                                     tuple));
      EXPECT_NE(std::find(cleaned.begin(), cleaned.end(), tuple),
                cleaned.end());
      EXPECT_EQ(tuple, cleaned[static_cast<size_t>(step) - 1]);
    }
  }
}

TEST(ExplainServeTest, ExplainSurvivesSaveRestartRehydrateByteForByte) {
  const std::string dir = FreshDataDir("explain_restart");
  const std::string explain_line =
      "{\"id\":7,\"op\":\"explain\",\"session\":\"p\",\"val_indices\":[0,"
      "3]}";
  const std::string why_line =
      "{\"id\":8,\"op\":\"why_certified\",\"session\":\"p\","
      "\"val_indices\":[1]}";
  std::string explain_before;
  std::string why_before;
  {
    ServerOptions options;
    options.data_dir = dir;
    Server server(options);
    RespondOk(&server, CreateRequest("p"));
    RespondOk(&server,
              "{\"op\":\"clean_step\",\"session\":\"p\",\"steps\":2}");
    explain_before = server.HandleLine(explain_line);
    why_before = server.HandleLine(why_line);
    RespondOk(&server, "{\"op\":\"save_session\",\"session\":\"p\"}");
  }
  // A new process over the same data dir: the first request naming the
  // session rehydrates it — spec rebuild, cleaning replay, audit restore —
  // and the provenance answers must not move by a byte.
  ServerOptions options;
  options.data_dir = dir;
  Server server(options);
  EXPECT_EQ(server.HandleLine(explain_line), explain_before);
  EXPECT_EQ(server.HandleLine(why_line), why_before);
}

TEST(ExplainServeTest, ConcurrentCleaningKeepsExplainVersionCoherent) {
  Server server;
  RespondOk(&server, CreateRequest("s"));
  // Readers race a cleaning writer; every explain must be a consistent
  // (version, witnesses) pair — two answers stamped with one version can
  // never disagree, no matter how the shared lock interleaved them.
  std::vector<std::string> lines[2];
  std::thread writer([&server] {
    for (int s = 0; s < 6; ++s) {
      server.HandleLine(
          "{\"op\":\"clean_step\",\"session\":\"s\",\"steps\":1}");
    }
  });
  std::thread readers[2];
  for (int r = 0; r < 2; ++r) {
    readers[r] = std::thread([&server, &lines, r] {
      for (int i = 0; i < 20; ++i) {
        lines[r].push_back(
            server.HandleLine(ExplainRequest("s", (r + i) % kVal)));
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // (version, val index) -> witnesses: any two reads at one version agree.
  std::map<std::pair<uint64_t, int>, std::vector<int>> seen;
  for (int r = 0; r < 2; ++r) {
    for (size_t i = 0; i < lines[r].size(); ++i) {
      const JsonValue response = ParseJson(lines[r][i]).value();
      ASSERT_TRUE(response.Find("ok")->bool_value()) << lines[r][i];
      const JsonValue one = FirstResult(*response.Find("result"));
      const auto key = std::make_pair(
          static_cast<uint64_t>(one.Find("version")->number_value()),
          static_cast<int>((r + static_cast<int>(i)) % kVal));
      const std::vector<int> witnesses = IntArray(*one.Find("witnesses"));
      const auto inserted = seen.emplace(key, witnesses);
      if (!inserted.second) {
        EXPECT_EQ(inserted.first->second, witnesses)
            << "version " << key.first << " served two witness sets";
      }
    }
  }
  // And the final quiesced answer matches a fresh serial evaluation.
  const std::string final_line = server.HandleLine(ExplainRequest("s", 0));
  EXPECT_EQ(server.HandleLine(ExplainRequest("s", 0)), final_line);
}

TEST(ExplainServeTest, ErrorShapesNameTheFieldAndEnumerateOps) {
  Server server;
  RespondOk(&server, CreateRequest("s"));

  const auto error_of = [&server](const std::string& line) {
    const JsonValue response = Respond(&server, line);
    EXPECT_NE(response.Find("ok"), nullptr);
    EXPECT_FALSE(response.Find("ok")->bool_value()) << response.Dump();
    return response;
  };
  const auto code = [](const JsonValue& response) {
    return response.Find("error")->Find("code")->string_value();
  };
  const auto message = [](const JsonValue& response) {
    return response.Find("error")->Find("message")->string_value();
  };

  // Unknown ops enumerate the registry so clients can self-correct.
  const JsonValue unknown = error_of("{\"op\":\"frobnicate\"}");
  EXPECT_EQ(code(unknown), "Invalid argument");
  EXPECT_NE(message(unknown).find("unknown op \"frobnicate\""),
            std::string::npos);
  EXPECT_NE(message(unknown).find("supported:"), std::string::npos);
  EXPECT_NE(message(unknown).find("explain"), std::string::npos);
  EXPECT_NE(message(unknown).find("why_certified"), std::string::npos);

  // Field errors name the offending field.
  const JsonValue no_session = error_of("{\"op\":\"explain\"}");
  EXPECT_EQ(code(no_session), "Invalid argument");
  EXPECT_NE(message(no_session).find("\"session\""), std::string::npos);

  const JsonValue both = error_of(
      "{\"op\":\"explain\",\"session\":\"s\",\"points\":[[0,0,0,0]],"
      "\"val_indices\":[0]}");
  EXPECT_EQ(code(both), "Invalid argument");
  EXPECT_NE(message(both).find("\"points\""), std::string::npos);
  EXPECT_NE(message(both).find("\"val_indices\""), std::string::npos);

  const JsonValue bad_steps = error_of(
      "{\"op\":\"clean_step\",\"session\":\"s\",\"steps\":\"two\"}");
  EXPECT_EQ(code(bad_steps), "Invalid argument");
  EXPECT_NE(message(bad_steps).find("\"steps\""), std::string::npos);

  const JsonValue bad_features = error_of(
      "{\"op\":\"explain\",\"session\":\"s\",\"points\":[[0,\"x\",0,0]]}");
  EXPECT_EQ(code(bad_features), "Invalid argument");
  EXPECT_NE(message(bad_features).find("\"points\""), std::string::npos);

  EXPECT_EQ(code(error_of(
                "{\"op\":\"explain\",\"session\":\"ghost\","
                "\"val_indices\":[0]}")),
            "Not found");
  EXPECT_EQ(code(error_of(
                "{\"op\":\"explain\",\"session\":\"s\",\"val_indices\":"
                "[999]}")),
            "Out of range");
}

TEST(ExplainServeTest, EveryResponseCarriesProtocolVersion1) {
  Server server;
  RespondOk(&server, CreateRequest("s"));
  for (const std::string& line :
       {std::string("{\"op\":\"ping\"}"), ExplainRequest("s", 0),
        std::string("{\"op\":\"explain\",\"session\":\"ghost\","
                    "\"val_indices\":[0]}"),
        std::string("{not json")}) {
    const JsonValue response = Respond(&server, line);
    const JsonValue* proto = response.Find("proto");
    ASSERT_NE(proto, nullptr) << response.Dump();
    EXPECT_EQ(proto->number_value(), 1.0) << response.Dump();
  }
}

}  // namespace
}  // namespace cpclean
