// The cleaning audit trail (cleaning/cp_clean.h): every greedy step
// appends one CleaningAuditRecord — which example was fixed, at which
// dataset version, and which validation points became certain because of
// it. The trail is the provenance behind the served `why_certified` op,
// so it must (a) partition the certainty gains exactly, (b) survive
// Snapshot/Restore bit-for-bit including truncated (pre-provenance)
// snapshots whose suffix is recomputed, and (c) refuse corrupted
// snapshots loudly.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cleaning/cp_clean.h"
#include "core/certain_predictor.h"
#include "eval/experiment.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

constexpr int kK = 3;

PreparedExperiment MakePrepared(uint64_t seed = 77) {
  ExperimentConfig config;
  config.dataset.name = "audit";
  config.dataset.synthetic.name = "audit";
  config.dataset.synthetic.num_rows = 40 + 12 + 8;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = seed;
  config.dataset.missing_rate = 0.25;
  config.dataset.val_size = 12;
  config.dataset.test_size = 8;
  config.k = kK;
  config.seed = seed;
  static NegativeEuclideanKernel kernel;
  return PrepareExperiment(config, kernel).value();
}

CpCleanOptions Options() {
  CpCleanOptions options;
  options.k = kK;
  options.track_test_accuracy = false;
  options.stop_when_all_certain = false;
  return options;
}

/// The validation indices Q1-certain on `dataset`, by direct evaluation.
std::set<int> CertainValSet(const CleaningTask& task,
                            const IncompleteDataset& dataset,
                            const SimilarityKernel& kernel) {
  const CertainPredictor predictor(&kernel, kK);
  std::set<int> certain;
  for (int v = 0; v < static_cast<int>(task.val_x.size()); ++v) {
    if (predictor.IsCertain(dataset, task.val_x[static_cast<size_t>(v)])) {
      certain.insert(v);
    }
  }
  return certain;
}

void ExpectAuditEqual(const std::vector<CleaningAuditRecord>& got,
                      const std::vector<CleaningAuditRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].step, want[i].step) << "record " << i;
    EXPECT_EQ(got[i].example, want[i].example) << "record " << i;
    EXPECT_EQ(got[i].version, want[i].version) << "record " << i;
    EXPECT_EQ(got[i].newly_certain, want[i].newly_certain) << "record " << i;
  }
}

TEST(AuditTrailTest, GreedyStepsPartitionTheCertaintyGains) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CleaningSession session(&prepared.task, &kernel, Options());

  // Who was certain before any cleaning: those gains belong to no step.
  const std::set<int> initially_certain =
      CertainValSet(prepared.task, session.working(), kernel);

  std::vector<int> order;
  while (true) {
    const int cleaned = session.StepGreedy();
    if (cleaned < 0) break;
    order.push_back(cleaned);
  }
  ASSERT_FALSE(order.empty());

  const std::vector<CleaningAuditRecord>& audit = session.audit();
  ASSERT_EQ(audit.size(), order.size());
  std::set<int> attributed = initially_certain;
  uint64_t last_version = 0;
  for (size_t i = 0; i < audit.size(); ++i) {
    EXPECT_EQ(audit[i].step, static_cast<int>(i) + 1);
    EXPECT_EQ(audit[i].example, order[i]);
    EXPECT_GT(audit[i].version, last_version);
    last_version = audit[i].version;
    EXPECT_TRUE(std::is_sorted(audit[i].newly_certain.begin(),
                               audit[i].newly_certain.end()));
    for (const int v : audit[i].newly_certain) {
      // Disjointness: a val point becomes certain exactly once (certainty
      // is monotone under cleaning), and never twice across records.
      EXPECT_TRUE(attributed.insert(v).second)
          << "val " << v << " attributed twice (step " << audit[i].step
          << ")";
    }
  }
  EXPECT_EQ(last_version, session.working().version());

  // Completeness: initial certainty plus the per-step gains is exactly
  // the final certain set, re-derived by brute force.
  EXPECT_EQ(attributed,
            CertainValSet(prepared.task, session.working(), kernel));
}

TEST(AuditTrailTest, RestoreReproducesTheTrailAtEveryPrefixDepth) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CleaningSession original(&prepared.task, &kernel, Options());
  for (int s = 0; s < 4; ++s) ASSERT_GE(original.StepGreedy(), 0);
  const CleaningSnapshot snapshot = original.Snapshot();
  ASSERT_EQ(snapshot.audit.size(), 4u);

  // Stored audit prefixes of every depth — 4 (full), 2 (a mid-history
  // snapshot), 0 (a pre-provenance snapshot with no audit section) — must
  // all rebuild the exact same trail: adopted where stored, recomputed
  // bit-for-bit where the prefix ends.
  for (const size_t depth : {4u, 2u, 0u}) {
    CleaningSnapshot partial = snapshot;
    partial.audit.resize(depth);
    CleaningSession restored(&prepared.task, &kernel, Options());
    ASSERT_TRUE(restored.Restore(partial).ok()) << "depth " << depth;
    ExpectAuditEqual(restored.audit(), original.audit());
    EXPECT_EQ(restored.working().version(), original.working().version());
    EXPECT_EQ(restored.FracValCertain(), original.FracValCertain());
  }
}

TEST(AuditTrailTest, RestoreRefusesCorruptedAudits) {
  const PreparedExperiment prepared = MakePrepared();
  NegativeEuclideanKernel kernel;
  CleaningSession original(&prepared.task, &kernel, Options());
  for (int s = 0; s < 2; ++s) ASSERT_GE(original.StepGreedy(), 0);
  const CleaningSnapshot snapshot = original.Snapshot();

  // More audit records than cleaned tuples.
  CleaningSnapshot overlong = snapshot;
  overlong.audit.push_back(overlong.audit.back());
  CleaningSession a(&prepared.task, &kernel, Options());
  EXPECT_FALSE(a.Restore(overlong).ok());

  // An audit record disagreeing with the cleaning order about which
  // example a step fixed.
  CleaningSnapshot mismatched = snapshot;
  mismatched.audit[0].example = snapshot.cleaned_order[1];
  CleaningSession b(&prepared.task, &kernel, Options());
  EXPECT_FALSE(b.Restore(mismatched).ok());
}

}  // namespace
}  // namespace cpclean
