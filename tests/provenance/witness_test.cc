// Witness extraction (core/witness.h): the provenance contract behind the
// served `explain` op. For every query the witness set must be SOUND —
// restricting the dataset to the witnesses reproduces the full-dataset Q1
// answer bit for bit — and 1-MINIMAL — removing any single witness flips
// or un-certifies the answer (whenever more than k tuples remain, so the
// restricted KNN query stays well-posed). Both properties are checked
// against brute-force re-evaluation on the restricted dataset, across
// seeds and missing rates.

#include "core/witness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/certain_predictor.h"
#include "eval/experiment.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

constexpr int kK = 3;

PreparedExperiment MakePrepared(uint64_t seed, double missing_rate) {
  ExperimentConfig config;
  config.dataset.name = "witness";
  config.dataset.synthetic.name = "witness";
  config.dataset.synthetic.num_rows = 36 + 10 + 6;
  config.dataset.synthetic.num_numeric = 4;
  config.dataset.synthetic.num_categorical = 0;
  config.dataset.synthetic.noise_sigma = 0.3;
  config.dataset.synthetic.seed = seed;
  config.dataset.missing_rate = missing_rate;
  config.dataset.val_size = 10;
  config.dataset.test_size = 6;
  config.k = kK;
  config.seed = seed;
  static NegativeEuclideanKernel kernel;
  return PrepareExperiment(config, kernel).value();
}

/// All tuple ids except `removed`, preserving ascending order.
std::vector<int> Without(const std::vector<int>& tuples, int removed) {
  std::vector<int> out;
  out.reserve(tuples.size() - 1);
  for (const int id : tuples) {
    if (id != removed) out.push_back(id);
  }
  return out;
}

TEST(WitnessTest, WitnessesReproduceTheFullAnswerAcrossSeeds) {
  NegativeEuclideanKernel kernel;
  const CertainPredictor predictor(&kernel, kK);
  for (const uint64_t seed : {11u, 23u, 47u}) {
    const PreparedExperiment prepared = MakePrepared(seed, 0.2);
    const IncompleteDataset& dataset = prepared.task.incomplete;
    for (const std::vector<double>& t : prepared.task.val_x) {
      const CheckResult full = predictor.Check(dataset, t);
      const auto witness = ExplainPrediction(dataset, t, kernel, kK);
      ASSERT_TRUE(witness.ok()) << witness.status().message();

      // The witness header must restate the full answer exactly.
      const int full_label = full.CertainLabel();
      EXPECT_EQ(witness.value().certain, full_label >= 0);
      EXPECT_EQ(witness.value().label, full_label);

      // Soundness: brute-force Q1 on the restriction reproduces it.
      const auto reproduces =
          WitnessReproduces(dataset, witness.value().tuples, t, kernel, kK,
                            witness.value().certain, witness.value().label);
      ASSERT_TRUE(reproduces.ok()) << reproduces.status().message();
      EXPECT_TRUE(reproduces.value());
    }
  }
}

TEST(WitnessTest, MinimalWitnessesCannotLoseAnyTuple) {
  NegativeEuclideanKernel kernel;
  int exercised = 0;
  for (const uint64_t seed : {11u, 23u, 47u}) {
    const PreparedExperiment prepared = MakePrepared(seed, 0.25);
    const IncompleteDataset& dataset = prepared.task.incomplete;
    for (const std::vector<double>& t : prepared.task.val_x) {
      const auto witness = ExplainPrediction(dataset, t, kernel, kK);
      ASSERT_TRUE(witness.ok());
      if (!witness.value().minimal) continue;
      // 1-minimality is only testable while the restricted query stays
      // well-posed (>= k tuples after a removal); minimization never digs
      // below that floor either.
      if (static_cast<int>(witness.value().tuples.size()) <= kK) continue;
      for (const int removed : witness.value().tuples) {
        const auto reproduces = WitnessReproduces(
            dataset, Without(witness.value().tuples, removed), t, kernel, kK,
            witness.value().certain, witness.value().label);
        ASSERT_TRUE(reproduces.ok());
        EXPECT_FALSE(reproduces.value())
            << "seed " << seed << ": witness tuple " << removed
            << " is redundant";
        ++exercised;
      }
    }
  }
  // The property must actually have been exercised, not skipped away.
  EXPECT_GT(exercised, 0);
}

TEST(WitnessTest, DeterministicAndWellFormed) {
  NegativeEuclideanKernel kernel;
  const PreparedExperiment prepared = MakePrepared(31, 0.2);
  const IncompleteDataset& dataset = prepared.task.incomplete;
  for (const std::vector<double>& t : prepared.task.val_x) {
    const auto first = ExplainPrediction(dataset, t, kernel, kK);
    const auto second = ExplainPrediction(dataset, t, kernel, kK);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value().tuples, second.value().tuples);
    EXPECT_EQ(first.value().support, second.value().support);
    EXPECT_EQ(first.value().label, second.value().label);
    EXPECT_EQ(first.value().minimal, second.value().minimal);

    // Witnesses and support are ascending, duplicate-free, in range.
    for (const std::vector<int>* ids :
         {&first.value().tuples, &first.value().support}) {
      EXPECT_TRUE(std::is_sorted(ids->begin(), ids->end()));
      EXPECT_EQ(std::adjacent_find(ids->begin(), ids->end()), ids->end());
      for (const int id : *ids) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, dataset.num_examples());
      }
    }
    EXPECT_GE(static_cast<int>(first.value().tuples.size()), kK);
  }
}

TEST(WitnessTest, RejectsIllPosedQueries) {
  NegativeEuclideanKernel kernel;
  const PreparedExperiment prepared = MakePrepared(31, 0.2);
  const IncompleteDataset& dataset = prepared.task.incomplete;
  const std::vector<double>& t = prepared.task.val_x[0];
  // k below 1 and k beyond the dataset are structured errors.
  EXPECT_FALSE(ExplainPrediction(dataset, t, kernel, 0).ok());
  EXPECT_FALSE(
      ExplainPrediction(dataset, t, kernel, dataset.num_examples() + 1).ok());
  // A subset smaller than k cannot host a KNN query.
  EXPECT_FALSE(CheckOnSubset(dataset, {0, 1}, t, kernel, kK).ok());
  // Out-of-range tuple ids are refused, not crashed on.
  EXPECT_FALSE(
      CheckOnSubset(dataset, {0, 1, dataset.num_examples()}, t, kernel, kK)
          .ok());
}

}  // namespace
}  // namespace cpclean
