// The declarative op registry (serve/op_registry.h) is the one source of
// truth for the protocol surface: routing, unknown-op enumeration, the
// capability object served by `list_sessions` and evicted-session
// `stats`, and the README "Serving" op table. These tests pin the
// invariants — unique well-formed rows, classification-consistent
// coalescing — and hold the committed README byte-identical to the
// generated table, so the docs cannot drift from the code.

#include "serve/op_registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "serve/server.h"

namespace cpclean {
namespace {

std::string CreateRequest(const std::string& name, int seed) {
  return StrFormat(
      "{\"op\":\"create_session\",\"session\":\"%s\",\"source\":"
      "\"synthetic\",\"dataset\":\"reg\",\"train_rows\":30,\"val_size\":6,"
      "\"test_size\":6,\"seed\":%d,\"numeric\":4,\"categorical\":0,"
      "\"noise_sigma\":0.3,\"missing_rate\":0.25,\"k\":3}",
      name.c_str(), seed);
}

JsonValue RespondOk(Server* server, const std::string& line) {
  const std::string response = server->HandleLine(line);
  auto parsed = ParseJson(response);
  EXPECT_TRUE(parsed.ok()) << response;
  if (!parsed.ok()) return JsonValue();
  EXPECT_TRUE(parsed.value().Find("ok")->bool_value()) << response;
  const JsonValue* result = parsed.value().Find("result");
  return result != nullptr ? *result : JsonValue();
}

TEST(OpRegistryTest, RowsAreUniqueAndWellFormed) {
  std::set<std::string> names;
  for (const OpInfo& op : OpRegistry()) {
    EXPECT_NE(op.name, nullptr);
    EXPECT_STRNE(op.name, "");
    EXPECT_TRUE(names.insert(op.name).second) << "duplicate op " << op.name;
    EXPECT_NE(op.handler, nullptr) << op.name;
    EXPECT_NE(op.params, nullptr) << op.name;
    EXPECT_NE(op.result, nullptr) << op.name;
    // FindOp resolves every registered name to its own row.
    EXPECT_EQ(FindOp(op.name), &op);
    // Coalescing merges identical waiting requests into one evaluation —
    // only sound for reads (a coalesced write would ack work it skipped).
    if (op.coalescable) {
      EXPECT_EQ(op.classification, OpClass::kRead) << op.name;
    }
    // Writes always mutate one named session.
    if (op.classification == OpClass::kWrite) {
      EXPECT_TRUE(op.needs_session) << op.name;
    }
  }
  // The protocol surface this PR pins: the provenance ops are registered
  // reads, and the registry is what unknown-op errors enumerate.
  ASSERT_NE(FindOp("explain"), nullptr);
  EXPECT_EQ(FindOp("explain")->classification, OpClass::kRead);
  ASSERT_NE(FindOp("why_certified"), nullptr);
  EXPECT_EQ(FindOp("why_certified")->classification, OpClass::kRead);
  EXPECT_EQ(FindOp("no_such_op"), nullptr);
  for (const OpInfo& op : OpRegistry()) {
    EXPECT_NE(SupportedOpsList().find(op.name), std::string::npos);
  }
}

TEST(OpRegistryTest, CapabilitiesPartitionTheRegistry) {
  const JsonValue capabilities = OpCapabilities();
  std::set<std::string> listed;
  for (const char* cls : {"read", "write", "lifecycle", "stateless"}) {
    const JsonValue* group = capabilities.Find(cls);
    ASSERT_NE(group, nullptr) << cls;
    for (const JsonValue& name : group->array()) {
      EXPECT_TRUE(listed.insert(name.string_value()).second)
          << name.string_value() << " listed twice";
      const OpInfo* op = FindOp(name.string_value());
      ASSERT_NE(op, nullptr);
      EXPECT_STREQ(OpClassName(op->classification), cls);
    }
  }
  EXPECT_EQ(listed.size(), OpRegistry().size());
}

TEST(OpRegistryTest, ReadmeOpTableMatchesTheGeneratedTable) {
  const std::filesystem::path readme =
      std::filesystem::path(CPCLEAN_SOURCE_DIR) / "README.md";
  std::ifstream in(readme);
  ASSERT_TRUE(in.good()) << readme;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string table = OpTableMarkdown();
  EXPECT_NE(buffer.str().find(table), std::string::npos)
      << "README.md's op table is stale; regenerate it to exactly:\n\n"
      << table;
}

TEST(OpRegistryTest, ListSessionsAndEvictedStatsReportTheSameCapabilities) {
  const std::string dir =
      ::testing::TempDir() + "/cpclean_registry_capabilities";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ServerOptions options;
  options.data_dir = dir;
  options.max_sessions = 1;
  Server server(options);
  RespondOk(&server, CreateRequest("first", 5));
  // Capacity 1: creating the second session evicts the first to disk.
  RespondOk(&server, CreateRequest("second", 6));

  const JsonValue listing = RespondOk(&server, "{\"op\":\"list_sessions\"}");
  const JsonValue* listed = listing.Find("capabilities");
  ASSERT_NE(listed, nullptr) << listing.Dump();
  EXPECT_EQ(listed->Dump(), OpCapabilities().Dump());

  const JsonValue stats = RespondOk(
      &server, "{\"op\":\"stats\",\"session\":\"first\"}");
  EXPECT_EQ(stats.Find("state")->string_value(), "evicted");
  const JsonValue* stub = stats.Find("capabilities");
  ASSERT_NE(stub, nullptr) << stats.Dump();
  // One registry-derived object everywhere: monitoring can diff the two
  // surfaces and must never see them disagree.
  EXPECT_EQ(stub->Dump(), listed->Dump());
}

}  // namespace
}  // namespace cpclean
