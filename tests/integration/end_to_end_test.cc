// Integration tests: the whole pipeline from synthetic generation through
// injection, task construction, baselines, and CPClean, asserting the
// paper's qualitative findings on a scaled-down instance.

#include <gtest/gtest.h>

#include "cleaning/boost_clean.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

ExperimentConfig SmallConfig(const std::string& name, uint64_t seed) {
  ExperimentConfig config;
  config.dataset = PaperDatasetByName(name, /*train_rows=*/60,
                                      /*val_size=*/20, /*test_size=*/60);
  config.k = 3;
  config.seed = seed;
  return config;
}

TEST(EndToEndTest, PrepareExperimentProducesConsistentTask) {
  NegativeEuclideanKernel kernel;
  const PreparedExperiment prepared =
      PrepareExperiment(SmallConfig("Supreme", 1), kernel).value();
  const CleaningTask& task = prepared.task;
  EXPECT_EQ(task.dirty_train.num_rows(), 60);
  EXPECT_EQ(task.val_x.size(), 20u);
  EXPECT_EQ(task.test_x.size(), 60u);
  EXPECT_GT(prepared.dirty_rows, 0);
  EXPECT_NEAR(prepared.observed_missing_rate,
              SmallConfig("Supreme", 1).dataset.missing_rate, 0.03);
  // The injected incompleteness must actually hurt on this nearly
  // separable task, otherwise there is nothing for cleaning to recover.
  EXPECT_GT(prepared.ground_truth_test_accuracy,
            prepared.default_test_accuracy);
}

TEST(EndToEndTest, Table2RowHasPaperShape) {
  // At this scaled-down size some seeds produce a degenerate
  // GroundTruth-vs-Default gap; scan for one where incompleteness hurts
  // (the regime Table 2 studies), then check the row's shape there.
  NegativeEuclideanKernel kernel;
  for (uint64_t seed : {2, 3, 6, 8, 12}) {
    const ExperimentConfig config = SmallConfig("Supreme", seed);
    const PreparedExperiment prepared =
        PrepareExperiment(config, kernel).value();
    if (prepared.ground_truth_test_accuracy -
            prepared.default_test_accuracy <
        0.03) {
      continue;
    }
    const Table2Row row = RunTable2Row(config, kernel).value();
    EXPECT_EQ(row.dataset, "Supreme");
    EXPECT_GT(row.ground_truth_accuracy, row.default_accuracy);
    // CPClean runs until all validation points are certain; its final
    // world agrees with GT on validation and should land above default on
    // test.
    EXPECT_GT(row.cp_clean_gap, 0.1);
    EXPECT_LE(row.cp_clean_examples_cleaned, 1.0);
    EXPECT_GT(row.cp_clean_examples_cleaned, 0.0);
    return;
  }
  FAIL() << "no seed produced a material accuracy gap";
}

TEST(EndToEndTest, CleaningCurvesDominateRandomOnCertifiedFraction) {
  NegativeEuclideanKernel kernel;
  const CleaningCurves curves =
      RunCleaningCurves(SmallConfig("Supreme", 3), kernel, /*repeats=*/2)
          .value();
  ASSERT_FALSE(curves.cp_clean.steps.empty());
  ASSERT_FALSE(curves.random_clean_mean.empty());
  // Compare the certified fraction at the midpoint of the cleaning
  // trajectory: CPClean must be at least as good as the random average
  // (this is its entire purpose — Figure 9's red curves).
  const size_t mid =
      std::min(curves.cp_clean.steps.size(), curves.random_clean_mean.size()) /
      2;
  EXPECT_GE(curves.cp_clean.steps[mid].frac_val_certain,
            curves.random_clean_mean[mid].frac_val_certain);
}

TEST(EndToEndTest, MulticlassPipelineWorks) {
  // The CP machinery (bool-semiring SS for Q1) also supports |Y| > 2 end
  // to end even though the paper evaluates binary tasks.
  NegativeEuclideanKernel kernel;
  ExperimentConfig config = SmallConfig("Bank", 4);
  config.dataset.synthetic.num_rows = 140;
  // Three-way labels via a quick hack: relabel by score terciles is not
  // exposed, so instead just verify the binary pipeline with k=1 (SS1 path)
  // and k=5 run cleanly.
  for (int k : {1, 5}) {
    config.k = k;
    const PreparedExperiment prepared =
        PrepareExperiment(config, kernel).value();
    CpCleanOptions options;
    options.k = k;
    options.max_cleaned = 2;
    options.track_test_accuracy = false;
    CleaningSession session(&prepared.task, &kernel, options);
    const CleaningRunResult run = session.RunCpClean();
    EXPECT_LE(run.examples_cleaned, 2);
  }
}

TEST(EndToEndTest, BaselineOrderingOnSeparableData) {
  // On the nearly separable Supreme analog, validation-driven BoostClean
  // should not lose to blind default cleaning on the validation set.
  NegativeEuclideanKernel kernel;
  const PreparedExperiment prepared =
      PrepareExperiment(SmallConfig("Supreme", 5), kernel).value();
  const BoostCleanResult boost =
      RunBoostClean(prepared.task, kernel, 3).value();
  double default_val_acc = 0.0;
  for (const auto& [name, acc] : boost.method_val_accuracy) {
    if (name == "mean/mode") default_val_acc = acc;
  }
  EXPECT_GE(boost.best_val_accuracy, default_val_acc);
}

}  // namespace
}  // namespace cpclean
