#ifndef CPCLEAN_TESTS_TEST_UTIL_H_
#define CPCLEAN_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "incomplete/incomplete_dataset.h"

namespace cpclean {
namespace testing_util {

/// Parameters for random incomplete datasets used by the property tests.
struct RandomDatasetSpec {
  int num_examples = 5;
  int max_candidates = 3;   // |C_i| drawn uniformly from [1, max_candidates]
  int num_labels = 2;
  int dim = 2;
  uint64_t seed = 1;
  /// Probability that a coordinate is drawn from a small discrete grid,
  /// which deliberately produces duplicated points and similarity ties.
  double tie_prob = 0.0;
};

/// Generates a random incomplete dataset (labels round-robin so each label
/// occurs at least once when num_examples >= num_labels).
inline IncompleteDataset MakeRandomDataset(const RandomDatasetSpec& spec) {
  Rng rng(spec.seed);
  IncompleteDataset dataset(spec.num_labels);
  for (int i = 0; i < spec.num_examples; ++i) {
    IncompleteExample ex;
    ex.label = i < spec.num_labels ? i : rng.NextInt(0, spec.num_labels - 1);
    const int m = rng.NextInt(1, spec.max_candidates);
    for (int j = 0; j < m; ++j) {
      std::vector<double> x(static_cast<size_t>(spec.dim));
      for (double& v : x) {
        if (rng.NextBernoulli(spec.tie_prob)) {
          v = static_cast<double>(rng.NextInt(-1, 1));  // grid point
        } else {
          v = rng.NextDouble(-2.0, 2.0);
        }
      }
      ex.candidates.push_back(std::move(x));
    }
    auto status = dataset.AddExample(std::move(ex));
    (void)status;
  }
  return dataset;
}

/// A random test point in the same range as the dataset features.
inline std::vector<double> MakeRandomTestPoint(int dim, uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<double> t(static_cast<size_t>(dim));
  for (double& v : t) v = rng.NextDouble(-2.0, 2.0);
  return t;
}

}  // namespace testing_util
}  // namespace cpclean

#endif  // CPCLEAN_TESTS_TEST_UTIL_H_
