// Tests the non-uniform-prior (tuple-independent probabilistic database)
// generalization of Q2 against exhaustive weighted enumeration.

#include "core/probabilistic.h"

#include <gtest/gtest.h>

#include "core/ss_dc.h"
#include "knn/kernel.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::MakeRandomTestPoint;
using testing_util::RandomDatasetSpec;

std::vector<std::vector<double>> RandomPriors(const IncompleteDataset& dataset,
                                              uint64_t seed) {
  Rng rng(seed);
  auto priors = UniformPriors(dataset);
  for (auto& row : priors) {
    double total = 0.0;
    for (double& p : row) {
      p = rng.NextDouble(0.05, 1.0);
      total += p;
    }
    for (double& p : row) p /= total;
  }
  return priors;
}

class WeightedQ2Test : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(WeightedQ2Test, MatchesWeightedEnumeration) {
  const int seed = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  RandomDatasetSpec spec;
  spec.num_examples = 7;
  spec.max_candidates = 3;
  spec.num_labels = seed % 2 == 0 ? 2 : 3;
  spec.seed = static_cast<uint64_t>(seed);
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const auto t = MakeRandomTestPoint(spec.dim, static_cast<uint64_t>(seed));
  NegativeEuclideanKernel kernel;
  const auto priors = RandomPriors(dataset, static_cast<uint64_t>(seed) + 99);

  const auto fast =
      WeightedLabelProbabilities(dataset, priors, t, kernel, k).value();
  const auto slow =
      WeightedLabelProbabilitiesBruteForce(dataset, priors, t, kernel, k)
          .value();
  ASSERT_EQ(fast.size(), slow.size());
  double total = 0.0;
  for (size_t y = 0; y < fast.size(); ++y) {
    EXPECT_NEAR(fast[y], slow[y], 1e-9) << "label " << y;
    total += fast[y];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeightedQ2Test,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(1, 3)));

TEST(WeightedQ2Test, UniformPriorReducesToQ2Fractions) {
  RandomDatasetSpec spec;
  spec.num_examples = 9;
  spec.max_candidates = 3;
  spec.num_labels = 2;
  spec.seed = 123;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const auto t = MakeRandomTestPoint(spec.dim, 123);
  NegativeEuclideanKernel kernel;
  const auto weighted =
      WeightedLabelProbabilities(dataset, UniformPriors(dataset), t, kernel, 3)
          .value();
  const auto fractions =
      SsDcCount<DoubleSemiring, true>(dataset, t, kernel, 3).Fractions();
  for (size_t y = 0; y < weighted.size(); ++y) {
    EXPECT_NEAR(weighted[y], fractions[y], 1e-9);
  }
}

TEST(WeightedQ2Test, SkewedPriorShiftsMassTowardLikelyWorld) {
  // One uncertain tuple decides the 1-NN prediction; skewing its prior
  // toward the label-flipping candidate must move the label probability.
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({1.0}, 1).ok());
  CP_CHECK(dataset.AddExample({{{0.1}, {5.0}}, 0}).ok());
  NegativeEuclideanKernel kernel;
  const std::vector<double> t = {0.0};
  // Candidate 0.1 makes tuple 1 the nearest neighbor -> label 0.
  std::vector<std::vector<double>> skew0 = {{1.0}, {0.9, 0.1}};
  std::vector<std::vector<double>> skew1 = {{1.0}, {0.1, 0.9}};
  const auto p0 =
      WeightedLabelProbabilities(dataset, skew0, t, kernel, 1).value();
  const auto p1 =
      WeightedLabelProbabilities(dataset, skew1, t, kernel, 1).value();
  EXPECT_NEAR(p0[0], 0.9, 1e-12);
  EXPECT_NEAR(p1[0], 0.1, 1e-12);
}

TEST(WeightedQ2Test, RejectsMalformedPriors) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddExample({{{0.0}, {1.0}}, 0}).ok());
  CP_CHECK(dataset.AddCleanExample({2.0}, 1).ok());
  NegativeEuclideanKernel kernel;
  const std::vector<double> t = {0.0};
  // Wrong shape.
  EXPECT_FALSE(WeightedLabelProbabilities(dataset, {{1.0}}, t, kernel, 1).ok());
  // Does not sum to 1.
  EXPECT_FALSE(
      WeightedLabelProbabilities(dataset, {{0.5, 0.2}, {1.0}}, t, kernel, 1)
          .ok());
  // Negative.
  EXPECT_FALSE(
      WeightedLabelProbabilities(dataset, {{1.2, -0.2}, {1.0}}, t, kernel, 1)
          .ok());
  // Bad k.
  EXPECT_FALSE(WeightedLabelProbabilities(dataset, UniformPriors(dataset), t,
                                          kernel, 5)
                   .ok());
}

}  // namespace
}  // namespace cpclean
