#include "core/support_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/truncated_poly.h"

namespace cpclean {
namespace {

TEST(TruncatedPolyTest, MulTruncatesAtDegree) {
  using S = Uint64Semiring;
  const Poly<S> a = {1, 2};        // 1 + 2z
  const Poly<S> b = {3, 4};        // 3 + 4z
  const Poly<S> full = PolyMul<S>(a, b, 2);
  ASSERT_EQ(full.size(), 3u);      // 3 + 10z + 8z^2
  EXPECT_EQ(full[0], 3u);
  EXPECT_EQ(full[1], 10u);
  EXPECT_EQ(full[2], 8u);
  const Poly<S> cut = PolyMul<S>(a, b, 1);
  ASSERT_EQ(cut.size(), 2u);
  EXPECT_EQ(cut[1], 10u);
}

TEST(TruncatedPolyTest, IdentityAndCoeffOutOfRange) {
  using S = Uint64Semiring;
  const Poly<S> p = {5, 7};
  const Poly<S> same = PolyMul<S>(p, PolyOne<S>(), 3);
  EXPECT_EQ(PolyCoeff<S>(same, 0), 5u);
  EXPECT_EQ(PolyCoeff<S>(same, 1), 7u);
  EXPECT_EQ(PolyCoeff<S>(same, 2), 0u);
  EXPECT_EQ(PolyCoeff<S>(same, -1), 0u);
}

TEST(TallyWeightTest, ExactAndNormalizedModes) {
  using WExact = TallyWeight<Uint64Semiring, false>;
  EXPECT_EQ(WExact::Below(2, 5), 2u);
  EXPECT_EQ(WExact::Above(2, 5), 3u);
  EXPECT_EQ(WExact::Free(5), 5u);
  EXPECT_EQ(WExact::Pinned(5), 1u);
  using WNorm = TallyWeight<DoubleSemiring, true>;
  EXPECT_DOUBLE_EQ(WNorm::Below(2, 5), 0.4);
  EXPECT_DOUBLE_EQ(WNorm::Above(2, 5), 0.6);
  EXPECT_DOUBLE_EQ(WNorm::Free(5), 1.0);
  EXPECT_DOUBLE_EQ(WNorm::Pinned(5), 0.2);
}

TEST(SupportTreeTest, RootIsProductOfLeaves) {
  using S = Uint64Semiring;
  SupportTree<S> tree(3, 2);
  tree.SetLeaf(0, 1, 2);  // 1 + 2z
  tree.SetLeaf(1, 3, 1);  // 3 + z
  tree.SetLeaf(2, 2, 2);  // 2 + 2z
  // (1+2z)(3+z)(2+2z) = (3 + 7z + 2z^2)(2+2z)
  //                   = 6 + 20z + 18z^2 + 4z^3 -> truncated at z^2.
  const Poly<S>& root = tree.Root();
  EXPECT_EQ(PolyCoeff<S>(root, 0), 6u);
  EXPECT_EQ(PolyCoeff<S>(root, 1), 20u);
  EXPECT_EQ(PolyCoeff<S>(root, 2), 18u);
}

TEST(SupportTreeTest, ProductExceptExcludesOneLeaf) {
  using S = Uint64Semiring;
  SupportTree<S> tree(3, 2);
  tree.SetLeaf(0, 1, 2);
  tree.SetLeaf(1, 3, 1);
  tree.SetLeaf(2, 2, 2);
  // Except leaf 1: (1+2z)(2+2z) = 2 + 6z + 4z^2.
  const Poly<S> except1 = tree.ProductExcept(1);
  EXPECT_EQ(PolyCoeff<S>(except1, 0), 2u);
  EXPECT_EQ(PolyCoeff<S>(except1, 1), 6u);
  EXPECT_EQ(PolyCoeff<S>(except1, 2), 4u);
}

TEST(SupportTreeTest, UpdateRefreshesAncestors) {
  using S = Uint64Semiring;
  SupportTree<S> tree(4, 1);
  for (int i = 0; i < 4; ++i) tree.SetLeaf(i, 1, 1);
  EXPECT_EQ(PolyCoeff<S>(tree.Root(), 1), 4u);  // coefficient of z in (1+z)^4
  tree.SetLeaf(2, 1, 0);                        // now (1+z)^3 * 1
  EXPECT_EQ(PolyCoeff<S>(tree.Root(), 1), 3u);
}

TEST(SupportTreeTest, MatchesDirectProductOnRandomInstances) {
  using S = DoubleSemiring;
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.NextInt(1, 12);
    const int k = rng.NextInt(1, 4);
    SupportTree<S> tree(n, k);
    std::vector<std::pair<double, double>> leaves;
    for (int i = 0; i < n; ++i) {
      const double below = rng.NextDouble();
      const double above = rng.NextDouble();
      leaves.push_back({below, above});
      tree.SetLeaf(i, below, above);
    }
    // Direct truncated product.
    Poly<S> direct = PolyOne<S>();
    for (const auto& [below, above] : leaves) {
      direct = PolyMul<S>(direct, {below, above}, k);
    }
    for (int c = 0; c <= k; ++c) {
      EXPECT_NEAR(PolyCoeff<S>(tree.Root(), c), PolyCoeff<S>(direct, c),
                  1e-12);
    }
    // ProductExcept for a random leaf.
    const int skip = rng.NextInt(0, n - 1);
    Poly<S> expect = PolyOne<S>();
    for (int i = 0; i < n; ++i) {
      if (i == skip) continue;
      expect = PolyMul<S>(expect, {leaves[static_cast<size_t>(i)].first,
                                   leaves[static_cast<size_t>(i)].second},
                          k);
    }
    const Poly<S> got = tree.ProductExcept(skip);
    for (int c = 0; c <= k; ++c) {
      EXPECT_NEAR(PolyCoeff<S>(got, c), PolyCoeff<S>(expect, c), 1e-12);
    }
  }
}

TEST(ProductTreeTest, ProductAndProductExcept) {
  ProductTree<Uint64Semiring> tree(4);
  tree.SetLeaf(0, 2);
  tree.SetLeaf(1, 3);
  tree.SetLeaf(2, 5);
  tree.SetLeaf(3, 7);
  EXPECT_EQ(tree.Product(), 210u);
  EXPECT_EQ(tree.ProductExcept(0), 105u);
  EXPECT_EQ(tree.ProductExcept(2), 42u);
  tree.SetLeaf(1, 0);
  EXPECT_EQ(tree.Product(), 0u);
  EXPECT_EQ(tree.ProductExcept(1), 70u);  // zero leaf excluded
}

TEST(ProductTreeTest, NonPowerOfTwoLeafCount) {
  ProductTree<Uint64Semiring> tree(5);
  for (int i = 0; i < 5; ++i) tree.SetLeaf(i, 2);
  EXPECT_EQ(tree.Product(), 32u);  // padding leaves are the identity
  EXPECT_EQ(tree.ProductExcept(4), 16u);
}

}  // namespace
}  // namespace cpclean
