// Medium-scale consistency: at sizes far beyond brute-force reach, every
// polynomial engine must still agree with every other (they implement the
// same mathematics through different data structures), and the facade must
// route to sound engines.

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/certain_predictor.h"
#include "core/fast_q2.h"
#include "core/mm.h"
#include "core/ss.h"
#include "core/ss_dc.h"
#include "core/ss_dc_mc.h"
#include "knn/kernel.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::MakeRandomTestPoint;
using testing_util::RandomDatasetSpec;

class CrossEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossEngineTest, EnginesAgreeAtMediumScale) {
  const int seed = GetParam();
  RandomDatasetSpec spec;
  spec.num_examples = 80;
  spec.max_candidates = 4;
  spec.num_labels = 2 + seed % 2;
  spec.dim = 3;
  spec.seed = static_cast<uint64_t>(seed);
  spec.tie_prob = seed % 3 == 0 ? 0.5 : 0.0;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const auto t = MakeRandomTestPoint(spec.dim, static_cast<uint64_t>(seed));
  NegativeEuclideanKernel kernel;
  const int k = 3;

  const auto naive =
      SsCount<DoubleSemiring, true>(dataset, t, kernel, k).per_label;
  const auto dc =
      SsDcCount<DoubleSemiring, true>(dataset, t, kernel, k).per_label;
  const auto mc =
      SsDcMcCount<DoubleSemiring, true>(dataset, t, kernel, k).per_label;
  FastQ2 fast(&dataset, k, 0.0);
  fast.SetTestPoint(t, kernel);
  const auto fastq = fast.Fractions();

  double naive_sum = 0.0;
  for (size_t y = 0; y < naive.size(); ++y) {
    EXPECT_NEAR(naive[y], dc[y], 1e-9) << "naive vs dc, label " << y;
    EXPECT_NEAR(naive[y], mc[y], 1e-9) << "naive vs mc, label " << y;
    EXPECT_NEAR(naive[y], fastq[y], 1e-9) << "naive vs fastq2, label " << y;
    naive_sum += naive[y];
  }
  EXPECT_NEAR(naive_sum, 1.0, 1e-9);

  // Q1: bool-semiring SS agrees with the fractions' support set, and MM
  // agrees in the binary case.
  const std::vector<bool> possible = SsPossibleLabels(dataset, t, kernel, k);
  for (size_t y = 0; y < possible.size(); ++y) {
    if (dc[y] > 1e-12) {
      EXPECT_TRUE(possible[y]) << "label " << y << " has mass but not possible";
    }
    if (!possible[y]) {
      EXPECT_NEAR(dc[y], 0.0, 1e-12);
    }
  }
  if (dataset.num_labels() == 2) {
    const std::vector<bool> mm = MmPossibleLabels(dataset, t, kernel, k);
    EXPECT_EQ(mm, possible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineTest, ::testing::Range(1, 11));

TEST(CertainPredictorTest, FacadeRoutesAndAgrees) {
  RandomDatasetSpec spec;
  spec.num_examples = 30;
  spec.max_candidates = 3;
  spec.num_labels = 3;  // forces the SS-based Q1 path
  spec.seed = 5;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const auto t = MakeRandomTestPoint(spec.dim, 5);
  NegativeEuclideanKernel kernel;
  const CertainPredictor predictor(&kernel, 3);
  EXPECT_EQ(predictor.k(), 3);

  const CheckResult check = predictor.Check(dataset, t);
  EXPECT_EQ(check.CertainLabel(),
            SsCheck(dataset, t, kernel, 3).CertainLabel());
  EXPECT_EQ(predictor.IsCertain(dataset, t), check.CertainLabel() >= 0);

  const auto probs = predictor.LabelProbabilities(dataset, t);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(predictor.PredictionEntropy(dataset, t), Entropy(probs), 1e-12);
}

TEST(CertainPredictorTest, K1PathMatchesGeneralPath) {
  RandomDatasetSpec spec;
  spec.num_examples = 25;
  spec.max_candidates = 3;
  spec.num_labels = 2;
  spec.seed = 8;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const auto t = MakeRandomTestPoint(spec.dim, 8);
  NegativeEuclideanKernel kernel;
  const CertainPredictor k1(&kernel, 1);
  const auto fast_path = k1.LabelProbabilities(dataset, t);  // SS1
  const auto general =
      SsDcCount<DoubleSemiring, true>(dataset, t, kernel, 1).per_label;
  for (size_t y = 0; y < general.size(); ++y) {
    EXPECT_NEAR(fast_path[y], general[y], 1e-9);
  }
}

TEST(CertainPredictorTest, CertainLabelOptional) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddCleanExample({0.0}, 1).ok());
  CP_CHECK(dataset.AddCleanExample({10.0}, 0).ok());
  NegativeEuclideanKernel kernel;
  const CertainPredictor predictor(&kernel, 1);
  const auto certain = predictor.CertainLabel(dataset, {0.1});
  ASSERT_TRUE(certain.has_value());
  EXPECT_EQ(*certain, 1);
}

}  // namespace
}  // namespace cpclean
