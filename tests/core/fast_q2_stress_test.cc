// Stress and state-machine tests for FastQ2 beyond the basic equivalence
// suite: interleaved pinned/unpinned queries, Rebind after dataset
// mutation, larger K, and truncation behavior at scale.

#include "core/fast_q2.h"

#include <gtest/gtest.h>

#include "core/ss_dc.h"
#include "knn/kernel.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::MakeRandomTestPoint;
using testing_util::RandomDatasetSpec;

TEST(FastQ2StressTest, InterleavedQueriesAreIndependent) {
  RandomDatasetSpec spec;
  spec.num_examples = 40;
  spec.max_candidates = 4;
  spec.seed = 17;
  IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  FastQ2 q2(&dataset, 3, 1e-9);

  // Alternate between two test points and several pins; each answer must
  // equal a fresh computation.
  const auto t1 = MakeRandomTestPoint(spec.dim, 1);
  const auto t2 = MakeRandomTestPoint(spec.dim, 2);
  for (int round = 0; round < 3; ++round) {
    for (const auto& t : {t1, t2}) {
      q2.SetTestPoint(t, kernel);
      const auto base = q2.Fractions();
      const auto expect =
          SsDcCount<DoubleSemiring, true>(dataset, t, kernel, 3).Fractions();
      for (size_t y = 0; y < expect.size(); ++y) {
        EXPECT_NEAR(base[y], expect[y], 1e-6);
      }
      const int i = 5 + round;
      for (int j = 0; j < dataset.num_candidates(i); ++j) {
        IncompleteDataset pinned_ds = dataset;
        pinned_ds.FixExample(i, j);
        const auto want = SsDcCount<DoubleSemiring, true>(pinned_ds, t,
                                                          kernel, 3)
                              .Fractions();
        const auto got = q2.FractionsPinned(i, j);
        for (size_t y = 0; y < want.size(); ++y) {
          EXPECT_NEAR(got[y], want[y], 1e-6);
        }
      }
    }
  }
}

TEST(FastQ2StressTest, RebindAfterFixExample) {
  RandomDatasetSpec spec;
  spec.num_examples = 25;
  spec.max_candidates = 3;
  spec.seed = 23;
  IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  const auto t = MakeRandomTestPoint(spec.dim, 23);

  FastQ2 q2(&dataset, 3, 0.0);
  // Mutate the dataset (clean a few tuples), rebind, and re-query.
  for (int i : dataset.DirtyExamples()) {
    dataset.FixExample(i, 0);
    if (i > 10) break;
  }
  q2.Rebind();
  q2.SetTestPoint(t, kernel);
  const auto got = q2.Fractions();
  const auto want =
      SsDcCount<DoubleSemiring, true>(dataset, t, kernel, 3).Fractions();
  for (size_t y = 0; y < want.size(); ++y) {
    EXPECT_NEAR(got[y], want[y], 1e-9);
  }
}

TEST(FastQ2StressTest, LargerKMatchesReference) {
  RandomDatasetSpec spec;
  spec.num_examples = 20;
  spec.max_candidates = 3;
  spec.num_labels = 3;
  spec.seed = 29;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  const auto t = MakeRandomTestPoint(spec.dim, 29);
  for (int k : {7, 11, 15}) {
    FastQ2 q2(&dataset, k, 0.0);
    q2.SetTestPoint(t, kernel);
    const auto got = q2.Fractions();
    const auto want =
        SsDcCount<DoubleSemiring, true>(dataset, t, kernel, k).Fractions();
    for (size_t y = 0; y < want.size(); ++y) {
      EXPECT_NEAR(got[y], want[y], 1e-9) << "k=" << k << " label " << y;
    }
  }
}

TEST(FastQ2StressTest, TruncationErrorBoundedAtScale) {
  RandomDatasetSpec spec;
  spec.num_examples = 300;
  spec.max_candidates = 4;
  spec.seed = 31;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  const auto t = MakeRandomTestPoint(spec.dim, 31);

  FastQ2 exact(&dataset, 3, 0.0);
  FastQ2 loose(&dataset, 3, 1e-6);
  exact.SetTestPoint(t, kernel);
  loose.SetTestPoint(t, kernel);
  const auto truth = exact.Fractions();
  const auto approx = loose.Fractions();
  for (size_t y = 0; y < truth.size(); ++y) {
    EXPECT_NEAR(approx[y], truth[y], 1e-5);
  }
}

TEST(FastQ2StressTest, DeterministicAcrossRepeatedCalls) {
  RandomDatasetSpec spec;
  spec.num_examples = 50;
  spec.max_candidates = 3;
  spec.seed = 37;
  spec.tie_prob = 0.6;  // duplicated points stress the total order
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  NegativeEuclideanKernel kernel;
  const auto t = MakeRandomTestPoint(spec.dim, 37);
  FastQ2 q2(&dataset, 3, 1e-9);
  q2.SetTestPoint(t, kernel);
  const auto first = q2.Fractions();
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(q2.Fractions(), first);
  }
}

}  // namespace
}  // namespace cpclean
