// Property tests validating every polynomial-time CP engine against the
// exponential brute-force oracle on random instances, including instances
// with deliberate similarity ties and duplicated points.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/mm.h"
#include "core/ss.h"
#include "core/ss1.h"
#include "core/ss_dc.h"
#include "core/ss_dc_mc.h"
#include "knn/kernel.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::MakeRandomTestPoint;
using testing_util::RandomDatasetSpec;

struct EngineCase {
  int num_examples;
  int max_candidates;
  int num_labels;
  int k;
  double tie_prob;
};

class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<EngineCase, int>> {};

TEST_P(EngineEquivalenceTest, AllEnginesMatchBruteForce) {
  const EngineCase c = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());

  RandomDatasetSpec spec;
  spec.num_examples = c.num_examples;
  spec.max_candidates = c.max_candidates;
  spec.num_labels = c.num_labels;
  spec.dim = 2;
  spec.seed = static_cast<uint64_t>(seed);
  spec.tie_prob = c.tie_prob;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const std::vector<double> t =
      MakeRandomTestPoint(spec.dim, static_cast<uint64_t>(seed));
  NegativeEuclideanKernel kernel;
  const int k = c.k;
  ASSERT_LE(k, dataset.num_examples());

  const CountResult<ExactSemiring> oracle =
      BruteForceCount(dataset, t, kernel, k);

  // Naive SortScan.
  const CountResult<ExactSemiring> ss =
      SsCount<ExactSemiring>(dataset, t, kernel, k);
  // Divide-and-conquer SortScan.
  const CountResult<ExactSemiring> ss_dc =
      SsDcCount<ExactSemiring>(dataset, t, kernel, k);
  // Many-class variant.
  const CountResult<ExactSemiring> ss_mc =
      SsDcMcCount<ExactSemiring>(dataset, t, kernel, k);

  ASSERT_EQ(oracle.per_label.size(), ss.per_label.size());
  BigUint ss_total, dc_total, mc_total;
  for (size_t y = 0; y < oracle.per_label.size(); ++y) {
    EXPECT_EQ(oracle.per_label[y], ss.per_label[y])
        << "SS mismatch on label " << y << ": oracle="
        << oracle.per_label[y].ToString()
        << " ss=" << ss.per_label[y].ToString();
    EXPECT_EQ(oracle.per_label[y], ss_dc.per_label[y])
        << "SS-DC mismatch on label " << y;
    EXPECT_EQ(oracle.per_label[y], ss_mc.per_label[y])
        << "SS-DC-MC mismatch on label " << y;
    ss_total += ss.per_label[y];
    dc_total += ss_dc.per_label[y];
    mc_total += ss_mc.per_label[y];
  }
  // Counts partition the possible worlds.
  EXPECT_EQ(ss_total, dataset.NumPossibleWorlds());
  EXPECT_EQ(dc_total, dataset.NumPossibleWorlds());
  EXPECT_EQ(mc_total, dataset.NumPossibleWorlds());

  // Normalized double mode agrees with the exact fractions.
  const CountResult<DoubleSemiring> frac =
      SsDcCount<DoubleSemiring, true>(dataset, t, kernel, k);
  const std::vector<double> oracle_frac = oracle.Fractions();
  for (size_t y = 0; y < oracle_frac.size(); ++y) {
    EXPECT_NEAR(oracle_frac[y], frac.per_label[y], 1e-9)
        << "normalized fraction mismatch on label " << y;
  }

  // Boolean possibility semiring gives the achievable-label set.
  const std::vector<bool> possible = SsPossibleLabels(dataset, t, kernel, k);
  for (size_t y = 0; y < oracle.per_label.size(); ++y) {
    EXPECT_EQ(!oracle.per_label[y].IsZero(), possible[y])
        << "possibility mismatch on label " << y;
  }

  // Q1 via SS agrees with brute force.
  const CheckResult bf_check = BruteForceCheck(dataset, t, kernel, k);
  const CheckResult ss_check = SsCheck(dataset, t, kernel, k);
  EXPECT_EQ(bf_check.CertainLabel(), ss_check.CertainLabel());

  // MM: binary-only fast Q1.
  if (dataset.num_labels() == 2) {
    const std::vector<bool> mm_possible =
        MmPossibleLabels(dataset, t, kernel, k);
    for (size_t y = 0; y < oracle.per_label.size(); ++y) {
      EXPECT_EQ(!oracle.per_label[y].IsZero(), mm_possible[y])
          << "MM possibility mismatch on label " << y;
    }
    EXPECT_EQ(bf_check.CertainLabel(),
              MmCheck(dataset, t, kernel, k).CertainLabel());
  }

  // K = 1 fast path.
  if (k == 1) {
    const CountResult<ExactSemiring> ss1 = Ss1ExactCount(dataset, t, kernel);
    for (size_t y = 0; y < oracle.per_label.size(); ++y) {
      EXPECT_EQ(oracle.per_label[y], ss1.per_label[y])
          << "SS1 mismatch on label " << y;
    }
  }
}

constexpr EngineCase kCases[] = {
    // Binary, K = 1 (the paper's simplest setting).
    {4, 3, 2, 1, 0.0},
    {6, 2, 2, 1, 0.0},
    {7, 3, 2, 1, 0.0},
    // Binary, K = 3 (the paper's experimental setting).
    {5, 3, 2, 3, 0.0},
    {7, 2, 2, 3, 0.0},
    {8, 2, 2, 3, 0.0},
    // Multi-class.
    {6, 3, 3, 1, 0.0},
    {6, 2, 3, 3, 0.0},
    {8, 2, 4, 3, 0.0},
    {7, 2, 3, 5, 0.0},
    // K equals N (every tuple in the top-K).
    {5, 3, 2, 5, 0.0},
    {5, 2, 3, 5, 0.0},
    // Heavy ties / duplicated points.
    {6, 3, 2, 1, 0.8},
    {6, 3, 2, 3, 0.8},
    {6, 2, 3, 3, 0.9},
    {7, 2, 2, 4, 1.0},
};

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, EngineEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kCases),
                       ::testing::Range(1, 13)));

// A complete dataset has exactly one world: the counts concentrate on the
// plain KNN prediction and every test point is certainly predicted.
TEST(EngineEdgeCases, CompleteDatasetIsAlwaysCertain) {
  RandomDatasetSpec spec;
  spec.num_examples = 9;
  spec.max_candidates = 1;
  spec.num_labels = 3;
  spec.seed = 7;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  ASSERT_TRUE(dataset.IsComplete());
  const std::vector<double> t = MakeRandomTestPoint(spec.dim, 7);
  NegativeEuclideanKernel kernel;
  const auto counts = SsDcCount<ExactSemiring>(dataset, t, kernel, 3);
  int nonzero = 0;
  for (const auto& c : counts.per_label) nonzero += c.IsZero() ? 0 : 1;
  EXPECT_EQ(nonzero, 1);
  EXPECT_EQ(SsCheck(dataset, t, kernel, 3).CertainLabel(),
            BruteForceCheck(dataset, t, kernel, 3).CertainLabel());
}

// A single-tuple dataset: every world predicts that tuple's label.
TEST(EngineEdgeCases, SingleTupleAlwaysCertain) {
  IncompleteDataset dataset(2);
  ASSERT_TRUE(dataset
                  .AddExample({{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}, 1})
                  .ok());
  NegativeEuclideanKernel kernel;
  const std::vector<double> t = {0.5, 0.5};
  const auto counts = SsDcCount<ExactSemiring>(dataset, t, kernel, 1);
  EXPECT_TRUE(counts.per_label[0].IsZero());
  EXPECT_EQ(counts.per_label[1], BigUint(3));
  EXPECT_EQ(SsCheck(dataset, t, kernel, 1).CertainLabel(), 1);
}

// All tuples share one label: certain regardless of incompleteness.
TEST(EngineEdgeCases, UniformLabelsAreCertain) {
  IncompleteDataset dataset(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dataset
                    .AddExample({{{static_cast<double>(i), 0.0},
                                  {static_cast<double>(i) + 0.5, 1.0}},
                                 1})
                    .ok());
  }
  NegativeEuclideanKernel kernel;
  const std::vector<double> t = {1.0, 0.0};
  EXPECT_EQ(MmCheck(dataset, t, kernel, 3).CertainLabel(), 1);
  const auto counts = SsDcCount<ExactSemiring>(dataset, t, kernel, 3);
  EXPECT_EQ(counts.per_label[1], BigUint(32));  // 2^5 worlds, all label 1
  EXPECT_TRUE(counts.per_label[0].IsZero());
}

}  // namespace
}  // namespace cpclean
