// Validates the production FastQ2 engine against the reference SS-DC
// engine (itself validated against brute force), including the pinned
// "what if candidate j is the truth" queries that power CPClean.

#include "core/fast_q2.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/stats.h"
#include "core/brute_force.h"
#include "core/ss_dc.h"
#include "knn/kernel.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::MakeRandomTestPoint;
using testing_util::RandomDatasetSpec;

class FastQ2Test : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(FastQ2Test, MatchesReferenceEngine) {
  const int seed = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  const int num_labels = std::get<2>(GetParam());

  RandomDatasetSpec spec;
  spec.num_examples = 12;
  spec.max_candidates = 3;
  spec.num_labels = num_labels;
  spec.seed = static_cast<uint64_t>(seed);
  IncompleteDataset dataset = MakeRandomDataset(spec);
  const std::vector<double> t =
      MakeRandomTestPoint(spec.dim, static_cast<uint64_t>(seed));
  NegativeEuclideanKernel kernel;

  FastQ2 fast(&dataset, k, /*epsilon=*/0.0);  // full scan, no truncation
  fast.SetTestPoint(t, kernel);
  const std::vector<double> got = fast.Fractions();
  const std::vector<double> want =
      SsDcCount<DoubleSemiring, true>(dataset, t, kernel, k).Fractions();
  ASSERT_EQ(got.size(), want.size());
  for (size_t y = 0; y < want.size(); ++y) {
    EXPECT_NEAR(got[y], want[y], 1e-9) << "label " << y;
  }

  // Early termination changes fractions only within epsilon.
  FastQ2 truncated(&dataset, k, /*epsilon=*/1e-9);
  truncated.SetTestPoint(t, kernel);
  const std::vector<double> approx = truncated.Fractions();
  for (size_t y = 0; y < want.size(); ++y) {
    EXPECT_NEAR(approx[y], want[y], 1e-6) << "label " << y;
  }

  // Pinned queries match SS-DC on the explicitly collapsed dataset, and
  // queries are independent (internal state restores between calls).
  for (int i : {0, 3, 7}) {
    for (int j = 0; j < dataset.num_candidates(i); ++j) {
      const std::vector<double> pinned = truncated.FractionsPinned(i, j);
      IncompleteDataset collapsed = dataset;
      collapsed.FixExample(i, j);
      const std::vector<double> expect =
          SsDcCount<DoubleSemiring, true>(collapsed, t, kernel, k).Fractions();
      for (size_t y = 0; y < expect.size(); ++y) {
        EXPECT_NEAR(pinned[y], expect[y], 1e-6)
            << "pin (" << i << "," << j << ") label " << y;
      }
    }
  }
  // Re-running the unpinned query still matches (state restoration).
  const std::vector<double> again = truncated.Fractions();
  for (size_t y = 0; y < want.size(); ++y) {
    EXPECT_NEAR(again[y], want[y], 1e-6);
  }
}

uint64_t Bits(double x) {
  uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(double));
  return b;
}

TEST_P(FastQ2Test, EntropyPinnedSweepBitMatchesPerCandidateCalls) {
  // The shared-prefix sweep must reproduce m separate EntropyPinned(i, j)
  // calls bit for bit — including under aggressive early termination
  // (which can end inside the shared prefix) — and must leave the engine
  // state pristine so later queries on the same engine are unaffected.
  const int seed = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  const int num_labels = std::get<2>(GetParam());

  RandomDatasetSpec spec;
  spec.num_examples = 12;
  spec.max_candidates = 3;
  spec.num_labels = num_labels;
  spec.seed = static_cast<uint64_t>(seed);
  IncompleteDataset dataset = MakeRandomDataset(spec);
  const std::vector<double> t =
      MakeRandomTestPoint(spec.dim, static_cast<uint64_t>(seed));
  NegativeEuclideanKernel kernel;

  for (const double epsilon : {0.0, 1e-9, 1e-3}) {
    FastQ2 sweep_engine(&dataset, k, epsilon);
    FastQ2 ref_engine(&dataset, k, epsilon);
    sweep_engine.SetTestPoint(t, kernel);
    ref_engine.SetTestPoint(t, kernel);
    for (int i = 0; i < dataset.num_examples(); ++i) {
      const int m = dataset.num_candidates(i);
      const std::vector<double> got = sweep_engine.EntropyPinnedSweep(i);
      ASSERT_EQ(static_cast<int>(got.size()), m);
      for (int j = 0; j < m; ++j) {
        const double want = ref_engine.EntropyPinned(i, j);
        EXPECT_EQ(Bits(got[static_cast<size_t>(j)]), Bits(want))
            << "epsilon " << epsilon << " pin (" << i << "," << j << ")";
      }
    }
    // State restoration: the engine that ran every sweep must answer
    // per-candidate queries (and repeat sweeps) with the same bits.
    for (const int i : {0, 5, 11}) {
      const std::vector<double> again = sweep_engine.EntropyPinnedSweep(i);
      for (int j = 0; j < dataset.num_candidates(i); ++j) {
        EXPECT_EQ(Bits(again[static_cast<size_t>(j)]),
                  Bits(sweep_engine.EntropyPinned(i, j)))
            << "epsilon " << epsilon << " pin (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastQ2Test,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(1, 3, 5),
                                            ::testing::Values(2, 3)));

TEST(FastQ2PruningTest, TopKFloorSoundness) {
  // Tuples whose max similarity sits below the top-K floor cannot change
  // the distribution when pinned.
  RandomDatasetSpec spec;
  spec.num_examples = 20;
  spec.max_candidates = 3;
  spec.num_labels = 2;
  spec.seed = 99;
  IncompleteDataset dataset = MakeRandomDataset(spec);
  const std::vector<double> t = MakeRandomTestPoint(spec.dim, 99);
  NegativeEuclideanKernel kernel;
  FastQ2 fast(&dataset, /*k=*/3, 0.0);
  fast.SetTestPoint(t, kernel);
  const double floor = fast.TopKFloor();
  const std::vector<double> base = fast.Fractions();
  int pruned = 0;
  for (int i = 0; i < dataset.num_examples(); ++i) {
    if (fast.MaxSimilarity(i) >= floor) continue;
    ++pruned;
    for (int j = 0; j < dataset.num_candidates(i); ++j) {
      const std::vector<double> pinned = fast.FractionsPinned(i, j);
      for (size_t y = 0; y < base.size(); ++y) {
        EXPECT_NEAR(pinned[y], base[y], 1e-9)
            << "pruned tuple " << i << " candidate " << j;
      }
    }
  }
  EXPECT_GT(pruned, 0) << "test instance should have prunable tuples";
}

TEST(FastQ2PruningTest, MinMaxSimilarityReported) {
  IncompleteDataset dataset(2);
  ASSERT_TRUE(dataset.AddExample({{{0.0}, {3.0}}, 0}).ok());
  ASSERT_TRUE(dataset.AddExample({{{1.0}}, 1}).ok());
  NegativeEuclideanKernel kernel;
  FastQ2 fast(&dataset, 1, 0.0);
  fast.SetTestPoint({0.0}, kernel);
  EXPECT_DOUBLE_EQ(fast.MaxSimilarity(0), 0.0);   // candidate at distance 0
  EXPECT_DOUBLE_EQ(fast.MinSimilarity(0), -9.0);  // candidate at distance 3
  EXPECT_DOUBLE_EQ(fast.MaxSimilarity(1), -1.0);
}

}  // namespace
}  // namespace cpclean
