#include "core/monte_carlo.h"

#include <gtest/gtest.h>

#include "core/ss_dc.h"
#include "knn/kernel.h"
#include "tests/test_util.h"

namespace cpclean {
namespace {

using testing_util::MakeRandomDataset;
using testing_util::MakeRandomTestPoint;
using testing_util::RandomDatasetSpec;

TEST(MonteCarloTest, ConvergesToExactFractions) {
  RandomDatasetSpec spec;
  spec.num_examples = 15;
  spec.max_candidates = 3;
  spec.num_labels = 2;
  spec.seed = 42;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const auto t = MakeRandomTestPoint(spec.dim, 42);
  NegativeEuclideanKernel kernel;
  const auto exact =
      SsDcCount<DoubleSemiring, true>(dataset, t, kernel, 3).Fractions();

  Rng rng(7);
  MonteCarloOptions options;
  options.samples = 20000;
  const auto estimate =
      MonteCarloLabelProbabilities(dataset, t, kernel, 3, &rng, options);
  ASSERT_EQ(estimate.size(), exact.size());
  for (size_t y = 0; y < exact.size(); ++y) {
    EXPECT_NEAR(estimate[y], exact[y], 0.02) << "label " << y;
  }
}

TEST(MonteCarloTest, ErrorShrinksWithSampleCount) {
  // Find an instance whose exact distribution is genuinely mixed — on a
  // degenerate (certain) instance every sample is exact and there is no
  // error to shrink.
  RandomDatasetSpec spec;
  spec.num_examples = 12;
  spec.max_candidates = 3;
  IncompleteDataset dataset;
  std::vector<double> t;
  std::vector<double> exact;
  NegativeEuclideanKernel kernel;
  for (uint64_t seed = 9;; ++seed) {
    ASSERT_LT(seed, 40u) << "no mixed instance found";
    spec.seed = seed;
    dataset = MakeRandomDataset(spec);
    t = MakeRandomTestPoint(spec.dim, seed);
    exact = SsDcCount<DoubleSemiring, true>(dataset, t, kernel, 3).Fractions();
    if (exact[0] > 0.1 && exact[0] < 0.9) break;
  }

  auto max_err = [&](int samples, uint64_t seed) {
    Rng rng(seed);
    MonteCarloOptions options;
    options.samples = samples;
    const auto est =
        MonteCarloLabelProbabilities(dataset, t, kernel, 3, &rng, options);
    double err = 0.0;
    for (size_t y = 0; y < exact.size(); ++y) {
      err = std::max(err, std::abs(est[y] - exact[y]));
    }
    return err;
  };
  // Average over a few seeds to avoid flakiness.
  double err_small = 0.0, err_large = 0.0;
  for (uint64_t s = 1; s <= 5; ++s) {
    err_small += max_err(100, s);
    err_large += max_err(10000, s);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(MonteCarloTest, ObservedLabelsUnderapproximatePossible) {
  RandomDatasetSpec spec;
  spec.num_examples = 10;
  spec.max_candidates = 3;
  spec.num_labels = 3;
  spec.seed = 21;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const auto t = MakeRandomTestPoint(spec.dim, 21);
  NegativeEuclideanKernel kernel;
  const std::vector<bool> possible = SsPossibleLabels(dataset, t, kernel, 3);
  Rng rng(3);
  const std::vector<bool> observed =
      MonteCarloObservedLabels(dataset, t, kernel, 3, &rng);
  for (size_t y = 0; y < possible.size(); ++y) {
    if (observed[y]) {
      EXPECT_TRUE(possible[y])
          << "sampled a label the exact engine says is impossible";
    }
  }
}

TEST(MonteCarloTest, DeterministicPerSeed) {
  RandomDatasetSpec spec;
  spec.num_examples = 8;
  spec.seed = 33;
  const IncompleteDataset dataset = MakeRandomDataset(spec);
  const auto t = MakeRandomTestPoint(spec.dim, 33);
  NegativeEuclideanKernel kernel;
  Rng rng1(5), rng2(5);
  EXPECT_EQ(MonteCarloLabelProbabilities(dataset, t, kernel, 2, &rng1),
            MonteCarloLabelProbabilities(dataset, t, kernel, 2, &rng2));
}

}  // namespace
}  // namespace cpclean
