#include <gtest/gtest.h>

#include <set>

#include "core/similarity.h"
#include "core/tally_enum.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

TEST(TallyEnumTest, EnumeratesAllCompositions) {
  std::vector<std::vector<int>> tallies;
  EnumerateTallies(3, 2, [&](const std::vector<int>& g) { tallies.push_back(g); });
  // C(2+2, 2) = 6 compositions of 2 into 3 parts.
  EXPECT_EQ(tallies.size(), 6u);
  EXPECT_EQ(CountTallies(3, 2), 6);
  std::set<std::vector<int>> unique(tallies.begin(), tallies.end());
  EXPECT_EQ(unique.size(), 6u);
  for (const auto& g : tallies) {
    EXPECT_EQ(g.size(), 3u);
    EXPECT_EQ(g[0] + g[1] + g[2], 2);
  }
}

TEST(TallyEnumTest, BinaryTallies) {
  std::vector<std::vector<int>> tallies;
  EnumerateTallies(2, 3, [&](const std::vector<int>& g) { tallies.push_back(g); });
  EXPECT_EQ(tallies.size(), 4u);  // (0,3) (1,2) (2,1) (3,0)
  EXPECT_EQ(CountTallies(2, 3), 4);
}

TEST(TallyEnumTest, SingleLabelDegenerate) {
  std::vector<std::vector<int>> tallies;
  EnumerateTallies(1, 5, [&](const std::vector<int>& g) { tallies.push_back(g); });
  ASSERT_EQ(tallies.size(), 1u);
  EXPECT_EQ(tallies[0][0], 5);
}

TEST(SimilarityMatrixTest, ShapesFollowCandidates) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddExample({{{0.0}, {1.0}}, 0}).ok());
  CP_CHECK(dataset.AddCleanExample({2.0}, 1).ok());
  NegativeEuclideanKernel kernel;
  const auto sims = SimilarityMatrix(dataset, {0.0}, kernel);
  ASSERT_EQ(sims.size(), 2u);
  ASSERT_EQ(sims[0].size(), 2u);
  ASSERT_EQ(sims[1].size(), 1u);
  EXPECT_DOUBLE_EQ(sims[0][0], 0.0);
  EXPECT_DOUBLE_EQ(sims[0][1], -1.0);
  EXPECT_DOUBLE_EQ(sims[1][0], -4.0);
}

TEST(SortedScanTest, AscendingUnderTotalOrder) {
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddExample({{{0.0}, {1.0}}, 0}).ok());
  CP_CHECK(dataset.AddExample({{{1.0}, {3.0}}, 1}).ok());  // tie at 1.0
  NegativeEuclideanKernel kernel;
  const auto scan = SortedCandidateScan(dataset, {0.0}, kernel);
  ASSERT_EQ(scan.size(), 4u);
  // Ascending similarity: -9 (tuple1 cand1), -1 (tuple0 cand1),
  // -1 (tuple1 cand0) [tie broken by tuple index], 0 (tuple0 cand0).
  EXPECT_EQ(scan[0].tuple, 1);
  EXPECT_EQ(scan[0].candidate, 1);
  EXPECT_EQ(scan[1].tuple, 0);
  EXPECT_EQ(scan[1].candidate, 1);
  EXPECT_EQ(scan[2].tuple, 1);
  EXPECT_EQ(scan[2].candidate, 0);
  EXPECT_EQ(scan[3].tuple, 0);
  EXPECT_EQ(scan[3].candidate, 0);
  for (size_t i = 1; i < scan.size(); ++i) {
    EXPECT_TRUE(LessSimilar(scan[i - 1], scan[i]));
  }
}

}  // namespace
}  // namespace cpclean
