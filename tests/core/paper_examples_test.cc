// Fixtures transcribed from the paper's worked examples: Figure 6
// (SS with K = 1 on a 3-tuple / 2-candidate dataset) and the MM
// illustration of Figure 7 / B.1.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/mm.h"
#include "core/ss1.h"
#include "core/ss_dc.h"
#include "knn/kernel.h"

namespace cpclean {
namespace {

// Figure 6 of the paper. Ascending similarity order of the candidates is
//   x_{2,1} < x_{1,1} < x_{2,2} < x_{3,1} < x_{1,2} < x_{3,2}
// with labels y_1 = y_2 = 1 and y_3 = 0. The worked example computes the
// counting query for K = 1 as: 6 worlds predict label 0, 2 predict label 1
// (out of 2^3 = 8 possible worlds).
IncompleteDataset MakeFigure6Dataset() {
  IncompleteDataset dataset(2);
  // 1-D features with a linear kernel against t = (1): similarity == x.
  CP_CHECK(dataset.AddExample({{{0.2}, {0.5}}, 1}).ok());  // x_{1,1}, x_{1,2}
  CP_CHECK(dataset.AddExample({{{0.1}, {0.3}}, 1}).ok());  // x_{2,1}, x_{2,2}
  CP_CHECK(dataset.AddExample({{{0.4}, {0.6}}, 0}).ok());  // x_{3,1}, x_{3,2}
  return dataset;
}

TEST(PaperFigure6, CountingQueryMatchesWorkedExample) {
  const IncompleteDataset dataset = MakeFigure6Dataset();
  const LinearKernel kernel;
  const std::vector<double> t = {1.0};

  const auto counts = Ss1ExactCount(dataset, t, kernel);
  EXPECT_EQ(counts.per_label[0], BigUint(6));
  EXPECT_EQ(counts.per_label[1], BigUint(2));
  EXPECT_EQ(counts.total, BigUint(8));

  // The brute-force oracle agrees, as does SS-DC.
  const auto oracle = BruteForceCount(dataset, t, kernel, /*k=*/1);
  EXPECT_EQ(oracle.per_label[0], BigUint(6));
  EXPECT_EQ(oracle.per_label[1], BigUint(2));
  const auto dc = SsDcCount<ExactSemiring>(dataset, t, kernel, /*k=*/1);
  EXPECT_EQ(dc.per_label[0], BigUint(6));
  EXPECT_EQ(dc.per_label[1], BigUint(2));
}

TEST(PaperFigure6, BoundarySetSizes) {
  // Example 3: the boundary set of x_{2,2} is empty (both candidates of C_3
  // are more similar), while the boundary set of x_{3,1} has 2 worlds.
  // These appear as the per-candidate contributions in the K=1 scan; we
  // verify them through the label supports: label 1 gets support only from
  // x_{1,2} (2 worlds), label 0 gets 2 (x_{3,1}) + 4 (x_{3,2}).
  const IncompleteDataset dataset = MakeFigure6Dataset();
  const LinearKernel kernel;
  const std::vector<double> t = {1.0};
  const auto frac = Ss1Fractions(dataset, t, kernel);
  EXPECT_NEAR(frac[0], 6.0 / 8.0, 1e-12);
  EXPECT_NEAR(frac[1], 2.0 / 8.0, 1e-12);
}

TEST(PaperFigure6, NotCertainlyPredictable) {
  // Both labels are supported by at least one world, so neither label can
  // be certainly predicted (Q1 false for both).
  const IncompleteDataset dataset = MakeFigure6Dataset();
  const LinearKernel kernel;
  const std::vector<double> t = {1.0};
  const CheckResult check = MmCheck(dataset, t, kernel, /*k=*/1);
  EXPECT_EQ(check.CertainLabel(), -1);
  EXPECT_FALSE(check.certain[0]);
  EXPECT_FALSE(check.certain[1]);
}

// Figure 1 of the paper: Kevin's age is NULL with domain {1, 2, 30};
// reproduced here as the motivating "certain prediction" scenario. With a
// 1-NN classifier and a test tuple near Anna, the prediction is certain
// because Anna's tuple is complete; near Kevin it is not.
TEST(PaperFigure1, CoddTableStyleScenario) {
  IncompleteDataset dataset(2);
  // Features: age (1-D). John(32) -> label 0, Anna(29) -> label 1,
  // Kevin(NULL in {1, 2, 30}) -> label 0.
  CP_CHECK(dataset.AddExample({{{32.0}}, 0}).ok());
  CP_CHECK(dataset.AddExample({{{29.0}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{1.0}, {2.0}, {30.0}}, 0}).ok());
  const NegativeEuclideanKernel kernel;

  // t = 29: Anna is always the nearest neighbor -> certain label 1.
  EXPECT_EQ(MmCheck(dataset, {29.0}, kernel, 1).CertainLabel(), 1);

  // t = 5: Kevin's completion decides (1 or 2 -> Kevin nearest, label 0;
  // 30 -> Anna nearest, label 1) -> not certain.
  EXPECT_EQ(MmCheck(dataset, {5.0}, kernel, 1).CertainLabel(), -1);
  const auto counts = Ss1ExactCount(dataset, {5.0}, kernel);
  EXPECT_EQ(counts.per_label[0], BigUint(2));
  EXPECT_EQ(counts.per_label[1], BigUint(1));
}

// The MM illustration (Figure 7 / B.1): constructing both extreme worlds
// and observing that both predict the same label certifies it.
TEST(PaperFigureB1, ExtremeWorldsCertifyLabel) {
  // Arrange a binary K=3 instance where label 1 wins in every world: four
  // label-1 tuples hug the test point while the two label-0 tuples are far
  // away in all their candidate positions.
  IncompleteDataset dataset(2);
  CP_CHECK(dataset.AddExample({{{0.1}, {0.2}, {0.3}, {0.4}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{-0.1}, {-0.2}, {-0.3}, {-0.4}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{0.15}, {0.25}, {0.35}, {0.45}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{-0.15}, {-0.25}, {-0.35}, {-0.45}}, 1}).ok());
  CP_CHECK(dataset.AddExample({{{5.0}, {6.0}, {7.0}, {8.0}}, 0}).ok());
  CP_CHECK(dataset.AddExample({{{-5.0}, {-6.0}, {-7.0}, {-8.0}}, 0}).ok());
  const NegativeEuclideanKernel kernel;
  const std::vector<double> t = {0.0};

  const std::vector<bool> possible = MmPossibleLabels(dataset, t, kernel, 3);
  EXPECT_FALSE(possible[0]);
  EXPECT_TRUE(possible[1]);
  EXPECT_EQ(MmCheck(dataset, t, kernel, 3).CertainLabel(), 1);
  EXPECT_EQ(BruteForceCheck(dataset, t, kernel, 3).CertainLabel(), 1);
}

}  // namespace
}  // namespace cpclean
