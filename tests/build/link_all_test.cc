// Build-substrate smoke test: links every layer library into one binary and
// touches one .cc-defined symbol per layer, so underlinking, ODR breaks, or
// a layer dropped from the CMake graph fail this test instead of surfacing
// later as mysterious downstream link errors.

#include <gtest/gtest.h>

#include <vector>

#include "cleaning/imputers.h"
#include "common/rng.h"
#include "core/similarity.h"
#include "data/value.h"
#include "datasets/toy.h"
#include "eval/metrics.h"
#include "incomplete/incomplete_dataset.h"
#include "knn/kernel.h"
#include "knn/vote.h"
#include "serve/json.h"

namespace cpclean {
namespace {

TEST(LinkAllTest, EveryLayerContributesOneSymbol) {
  // common: Rng::NextUint64 lives in rng.cc.
  Rng rng(7);
  rng.NextUint64();

  // data: Value::ToString lives in value.cc.
  EXPECT_EQ(Value().ToString(), Value().ToString());

  // incomplete: IncompleteDataset::AddCleanExample lives in
  // incomplete_dataset.cc.
  IncompleteDataset dataset(2);
  ASSERT_TRUE(dataset.AddCleanExample({0.0, 0.0}, 0).ok());
  ASSERT_TRUE(dataset.AddCleanExample({1.0, 1.0}, 1).ok());

  // knn: MajorityVote lives in vote.cc; NegativeEuclideanKernel's vtable in
  // kernel.cc.
  EXPECT_EQ(MajorityVote({0, 1, 1}, 2), 1);
  NegativeEuclideanKernel kernel;

  // core: SimilarityMatrix lives in similarity.cc.
  const auto sims = SimilarityMatrix(dataset, {0.5, 0.5}, kernel);
  EXPECT_EQ(sims.size(), 2u);

  // datasets: Figure6Dataset lives in toy.cc.
  EXPECT_GT(Figure6Dataset().num_examples(), 0);

  // cleaning: BoostCleanMethodSpace lives in imputers.cc.
  EXPECT_FALSE(BoostCleanMethodSpace().empty());

  // eval: AccuracyScore lives in metrics.cc.
  EXPECT_DOUBLE_EQ(AccuracyScore({0, 1}, {0, 1}), 1.0);

  // serve: JsonValue::Dump lives in json.cc.
  EXPECT_EQ(JsonValue(true).Dump(), "true");
}

}  // namespace
}  // namespace cpclean
